#!/usr/bin/env python3
"""Operating an independent warehouse: snapshots, audits, hybrid storage.

Day-2 operations around the paper's machinery:

* persist the warehouse to a JSON snapshot and resume it later — the
  resumed instance keeps answering queries and folding updates in without
  ever re-reading the sources (independence extends across restarts);
* self-audit — because the warehouse state determines the base state
  (Proposition 2.1), every source constraint is checkable locally, which
  catches lost or corrupted notifications;
* hybrid storage (Section 6) — keep a complement virtual (store the
  expression, not the data) and watch the counted source round trips.

Run:  python examples/warehouse_operations.py
"""

import os
import tempfile

from repro import Catalog, Database, Update, View, Warehouse, parse, specify
from repro.core.hybrid import HybridWarehouse
from repro.storage.persist import load_warehouse, save_warehouse


def build():
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    catalog.inclusion("Sale", ("clerk",), "Emp")
    sources = Database(catalog)
    sources.load("Emp", [("Mary", 23), ("John", 25), ("Paula", 32)])
    sources.load("Sale", [("TV", "Mary"), ("PC", "John")])
    return catalog, sources


def snapshot_and_resume(catalog, sources) -> None:
    print("1. Snapshot / resume")
    print("-" * 60)
    warehouse = Warehouse.specify(catalog, [View("Sold", parse("Sale join Emp"))])
    warehouse.initialize(sources)

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "warehouse.json")
        save_warehouse(warehouse, path)
        print(f"saved snapshot ({os.path.getsize(path)} bytes)")

        resumed = load_warehouse(path)
        print("resumed; storage:", resumed.storage_by_relation())
        update = sources.insert("Sale", [("Radio", "Paula")])
        resumed.apply(update)
        print("applied post-restart update; Sold =",
              sorted(resumed.relation("Sold").rows))
        assert resumed.reconstruct("Sale") == sources["Sale"]
        print("reconstruction still exact: OK\n")


def audit(catalog, sources) -> None:
    print("2. Self-audit (lost notification detection)")
    print("-" * 60)
    warehouse = Warehouse.specify(
        catalog, [View("Sold", parse("Sale join Emp"))], prune_empty=False
    )
    warehouse.initialize(sources)
    print("audit on a healthy warehouse:", warehouse.audit() or "clean")

    # Two source updates; the first notification gets lost in transit.
    sources.insert("Emp", [("Zoe", 40)])         # lost!
    lost_then_applied = sources.insert("Sale", [("Mixer", "Zoe")])
    warehouse.apply(lost_then_applied)
    problems = warehouse.audit()
    print("audit after losing a notification:")
    for problem in problems:
        print("   !", problem)
    print()


def hybrid(catalog, sources) -> None:
    print("3. Hybrid storage (Section 6)")
    print("-" * 60)
    spec = specify(catalog, [View("Sold", parse("Sale join Emp"))])
    full = Warehouse(spec)
    full.initialize(sources)
    virtual = HybridWarehouse(
        spec, ["C_Emp"], source_access=lambda name: sources[name]
    )
    virtual.initialize(sources)
    print(f"fully materialized: {full.storage_rows()} rows; "
          f"hybrid: {virtual.storage_rows()} rows")
    print("answering pi[clerk](Emp) at the hybrid warehouse...")
    answer = virtual.answer("pi[clerk](Emp)")
    print("   answer:", sorted(answer.rows))
    print(f"   source round trips so far: {virtual.source_queries}")
    print("(the fully materialized warehouse would have made zero)")


def main() -> None:
    catalog, sources = build()
    snapshot_and_resume(catalog, sources)
    audit(catalog, sources)
    catalog2, sources2 = build()
    hybrid(catalog2, sources2)


if __name__ == "__main__":
    main()
