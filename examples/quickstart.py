#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1 warehouse, end to end.

Builds the Sale/Emp scenario, derives the complement {C1, C2}, answers the
Example 1.2 query from warehouse data only, and replays the Example 1.1
insertion without ever querying the sources.

Run:  python examples/quickstart.py
"""

from repro import Catalog, Database, View, Warehouse, parse


def main() -> None:
    # --- The sources (two autonomous databases in the paper) -------------
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))

    sources = Database(catalog)
    sources.load("Sale", [("TV set", "Mary"), ("VCR", "Mary"), ("PC", "John")])
    sources.load("Emp", [("Mary", 23), ("John", 25), ("Paula", 32)])

    # --- Step 1 (Section 5): specify the warehouse -----------------------
    sold = View("Sold", parse("Sale join Emp"))
    warehouse = Warehouse.specify(catalog, [sold])
    print("Warehouse specification")
    print("=======================")
    print(warehouse.describe())

    # --- Initial extract (the only time source data is read) -------------
    warehouse.initialize(sources)
    print("\nMaterialized state:", warehouse.storage_by_relation())
    print("C_Emp (the paper's C1):", sorted(warehouse.relation("C_Emp").rows))

    # --- Query independence (Example 1.2) --------------------------------
    query = "pi[clerk](Sale) union pi[clerk](Emp)"
    print(f"\nQ  = {query}")
    print(f"Q^ = {warehouse.translate(query)}")
    print("answered from the warehouse:", sorted(warehouse.answer(query).rows))

    # --- Update independence (Example 1.1) -------------------------------
    # The Sales database notifies the integrator of an insertion; the
    # warehouse folds it in using C1 as the join partner for Paula.
    update = sources.insert("Sale", [("Computer", "Paula")])
    warehouse.apply(update)
    print("\nAfter inserting (Computer, Paula) into Sale:")
    print("Sold =", sorted(warehouse.relation("Sold").rows))
    print("C_Emp =", sorted(warehouse.relation("C_Emp").rows), "(Paula moved out)")

    # --- The warehouse can recompute the base relations ------------------
    print("\nReconstructed Sale =", sorted(warehouse.reconstruct("Sale").rows))
    assert warehouse.reconstruct("Sale") == sources["Sale"]
    assert warehouse.reconstruct("Emp") == sources["Emp"]
    print("reconstruction matches the sources: OK")


if __name__ == "__main__":
    main()
