#!/usr/bin/env python3
"""Query independence (Section 3): answering source queries offline.

Builds the augmented warehouse of Example 2.4, translates a panel of queries
with ``Q^ = Q ∘ W^{-1}`` (Theorem 3.1), then *drops the sources entirely*
and keeps answering — the situation the paper motivates (sources busy,
legacy, or refusing ad-hoc queries).

Run:  python examples/query_independence.py
"""

from repro import Catalog, Database, View, Warehouse, evaluate, parse


QUERIES = [
    "pi[age](sigma[item = 'computer'](Sale) join Emp)",  # the paper's worked query
    "pi[clerk](Sale) union pi[clerk](Emp)",
    "Emp minus pi[clerk, age](Sale join Emp)",
    "sigma[age >= 25](Emp)",
    "pi[item](Sale) join pi[clerk](Sale)",
]


def main() -> None:
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    catalog.inclusion("Sale", ("clerk",), "Emp")  # referential integrity

    sources = Database(catalog)
    sources.load("Emp", [("Mary", 23), ("John", 25), ("Paula", 32)])
    sources.load(
        "Sale",
        [("TV set", "Mary"), ("VCR", "Mary"), ("PC", "John"), ("computer", "Paula")],
    )

    warehouse = Warehouse.specify(catalog, [View("Sold", parse("Sale join Emp"))])
    warehouse.initialize(sources)

    print("Translations (Q over sources  ->  Q^ over warehouse)")
    print("=" * 70)
    for text in QUERIES:
        translated = warehouse.translate(text)
        print(f"Q  = {text}")
        print(f"Q^ = {translated}")
        expected = evaluate(parse(text), sources.state())
        got = warehouse.answer(text)
        assert got == expected
        print(f"     -> {sorted(got.rows)}   (matches source evaluation)")
        print()

    # --- sources go offline ----------------------------------------------
    print("Simulating a source outage: deleting the source databases...")
    del sources
    print("Still answering from the warehouse:")
    for text in QUERIES:
        print(f"  {text:55s} -> {sorted(warehouse.answer(text).rows)}")


if __name__ == "__main__":
    main()
