#!/usr/bin/env python3
"""Constraint-driven complement minimization (Examples 2.1, 2.3, 2.4).

Walks through the paper's Section 2 examples and shows how declared keys and
inclusion dependencies shrink — often to empty — the complement a warehouse
has to store.

Run:  python examples/constraint_minimization.py
"""

from repro import Catalog, View, complement_thm22, parse


def example_21() -> None:
    print("Example 2.1: multiple views shrink the complement")
    print("-" * 60)
    catalog = Catalog()
    catalog.relation("R", ("X", "Y"))
    catalog.relation("S", ("Y", "Z"))
    catalog.relation("T", ("Z",))

    single = complement_thm22(catalog, [View("V1", parse("R join S join T"))])
    print("V = {V1 = R join S join T}:")
    for complement in single.complements.values():
        print("   ", complement)

    multi = complement_thm22(
        catalog,
        [View("V1", parse("R join S join T")), View("V2", parse("S"))],
    )
    print("V = {V1, V2 = S}:  (C_S becomes empty)")
    for complement in multi.complements.values():
        empty = "  <- provably empty" if complement.provably_empty else ""
        print("   ", complement, empty)
    print()


def example_23() -> None:
    print("Example 2.3: keys and INDs (Theorem 2.2)")
    print("-" * 60)
    views = [
        View("V1", parse("R1 join R2")),
        View("V2", parse("R3")),
        View("V3", parse("pi[A, B](R1)")),
        View("V4", parse("pi[A, C](R1)")),
    ]

    def catalog(with_keys: bool, with_inds: bool) -> Catalog:
        cat = Catalog()
        key = ("A",) if with_keys else None
        cat.relation("R1", ("A", "B", "C"), key=key)
        cat.relation("R2", ("A", "C", "D"), key=key)
        cat.relation("R3", ("A", "B"), key=key)
        if with_inds:
            cat.inclusion("R3", ("A", "B"), "R1")
            cat.inclusion("R2", ("A", "C"), "R1")
        return cat

    for label, with_keys, with_inds in (
        ("no constraints", False, False),
        ("keys only", True, False),
        ("keys + INDs", True, True),
    ):
        spec = complement_thm22(catalog(with_keys, with_inds), views)
        stored = [c for c in spec.complements.values() if not c.provably_empty]
        print(f"{label}:")
        for complement in spec.complements.values():
            flag = "empty" if complement.provably_empty else "stored"
            print(f"    [{flag}] {complement}")
        print(f"    R1 inverse: {spec.inverses['R1']}")
    print()


def example_24() -> None:
    print("Example 2.4: referential integrity empties C2")
    print("-" * 60)
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    catalog.inclusion("Sale", ("clerk",), "Emp")

    spec = complement_thm22(catalog, [View("Sold", parse("Sale join Emp"))])
    print(spec.describe())
    print()


def main() -> None:
    example_21()
    example_23()
    example_24()


if __name__ == "__main__":
    main()
