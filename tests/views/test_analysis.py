"""Unit tests for :mod:`repro.views.analysis`."""

from __future__ import annotations

import pytest

from repro import Catalog, PSJView
from repro.algebra.conditions import attr, const
from repro.views.analysis import (
    derives_inclusion,
    is_join_connected,
    join_complete_relations,
    join_graph,
)


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    catalog.relation("Dept", ("dept", "city"), key=("dept",))
    catalog.inclusion("Sale", ("clerk",), "Emp")
    return catalog


class TestJoinGraph:
    def test_edges_carry_shared_attributes(self, catalog):
        view = PSJView(("Sale", "Emp"))
        graph = join_graph(view, catalog)
        assert graph == {("Emp", "Sale"): frozenset({"clerk"})}

    def test_connectivity(self, catalog):
        assert is_join_connected(PSJView(("Sale", "Emp")), catalog)
        assert not is_join_connected(PSJView(("Sale", "Dept")), catalog)
        assert is_join_connected(PSJView(("Sale",)), catalog)


class TestDerivesInclusion:
    def test_declared(self, catalog):
        assert derives_inclusion(catalog, "Sale", ("clerk",), "Emp", ("clerk",))

    def test_reflexive(self, catalog):
        assert derives_inclusion(catalog, "Emp", ("clerk",), "Emp", ("clerk",))

    def test_not_derivable(self, catalog):
        assert not derives_inclusion(catalog, "Emp", ("clerk",), "Sale", ("clerk",))

    def test_transitive_chain(self):
        catalog = Catalog()
        catalog.relation("A", ("x",), key=("x",))
        catalog.relation("B", ("x",), key=("x",))
        catalog.relation("C", ("x",), key=("x",))
        catalog.inclusion("A", ("x",), "B")
        catalog.inclusion("B", ("x",), "C")
        assert derives_inclusion(catalog, "A", ("x",), "C", ("x",))
        assert not derives_inclusion(catalog, "C", ("x",), "A", ("x",))

    def test_transitive_with_renaming(self):
        catalog = Catalog()
        catalog.relation("A", ("p",))
        catalog.relation("B", ("q",), key=("q",))
        catalog.relation("C", ("r",), key=("r",))
        catalog.inclusion("A", ("p",), "B", ("q",))
        catalog.inclusion("B", ("q",), "C", ("r",))
        assert derives_inclusion(catalog, "A", ("p",), "C", ("r",))

    def test_projection_of_wider_ind(self):
        catalog = Catalog()
        catalog.relation("A", ("x", "y"))
        catalog.relation("B", ("x", "y"), key=("x",))
        catalog.inclusion("A", ("x", "y"), "B")
        assert derives_inclusion(catalog, "A", ("x",), "B", ("x",))
        assert derives_inclusion(catalog, "A", ("y",), "B", ("y",))

    def test_length_mismatch(self, catalog):
        assert not derives_inclusion(catalog, "Sale", ("clerk",), "Emp", ())


class TestJoinCompleteness:
    def test_example24(self, catalog):
        view = PSJView(("Sale", "Emp"))
        assert join_complete_relations(view, catalog) == frozenset({"Sale"})

    def test_selection_blocks_completeness(self, catalog):
        view = PSJView(("Sale", "Emp"), condition=(attr("age") > const(30)))
        assert join_complete_relations(view, catalog) == frozenset()

    def test_projection_blocks_completeness(self, catalog):
        view = PSJView(("Sale", "Emp"), projection=("clerk", "age"))
        assert join_complete_relations(view, catalog) == frozenset()

    def test_single_relation_always_complete(self, catalog):
        view = PSJView(("Emp",))
        assert join_complete_relations(view, catalog) == frozenset({"Emp"})

    def test_chain_of_inds(self):
        catalog = Catalog()
        catalog.relation("L", ("ok", "pk"), key=("ok", "pk"))
        catalog.relation("O", ("ok", "ck"), key=("ok",))
        catalog.relation("C", ("ck",), key=("ck",))
        catalog.inclusion("L", ("ok",), "O")
        catalog.inclusion("O", ("ck",), "C")
        view = PSJView(("L", "O", "C"))
        complete = join_complete_relations(view, catalog)
        assert "L" in complete
        # O loses tuples without lineitems; C loses customers without orders.
        assert "O" not in complete and "C" not in complete

    def test_cartesian_member_blocks(self, catalog):
        view = PSJView(("Sale", "Emp", "Dept"))
        assert join_complete_relations(view, catalog) == frozenset()
