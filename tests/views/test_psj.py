"""Unit tests for :mod:`repro.views.psj`."""

from __future__ import annotations

import pytest

from repro import ExpressionError, PSJView, View, as_psj, parse
from repro.algebra.conditions import TRUE

SCOPE = {"Sale": ("item", "clerk"), "Emp": ("clerk", "age"), "T": ("z",)}


class TestNormalization:
    def test_plain_relation(self):
        view = as_psj(parse("Sale"))
        assert view.relations == ("Sale",)
        assert view.projection is None
        assert view.has_trivial_condition()

    def test_select_join(self):
        view = as_psj(parse("sigma[age > 21](Sale join Emp)"))
        assert view.relations == ("Sale", "Emp")
        assert str(view.condition) == "age > 21"

    def test_selections_pulled_out_of_joins(self):
        view = as_psj(parse("sigma[item = 'PC'](Sale) join sigma[age > 21](Emp)"))
        assert view.relations == ("Sale", "Emp")
        assert str(view.condition) == "item = 'PC' and age > 21"

    def test_projection_at_top(self):
        view = as_psj(parse("pi[item, age](sigma[age > 21](Sale join Emp))"))
        assert view.projection == ("item", "age")

    def test_selection_above_projection(self):
        view = as_psj(parse("sigma[age > 21](pi[item, age](Sale join Emp))"))
        assert view.projection == ("item", "age")
        assert str(view.condition) == "age > 21"

    def test_nested_projections_compose(self):
        view = as_psj(parse("pi[age](pi[item, age](Sale join Emp))"))
        assert view.projection == ("age",)

    def test_projection_below_join_rejected(self):
        with pytest.raises(ExpressionError):
            as_psj(parse("pi[clerk](Sale) join Emp"))

    def test_union_rejected(self):
        with pytest.raises(ExpressionError):
            as_psj(parse("Sale union Sale"))

    def test_difference_rejected(self):
        with pytest.raises(ExpressionError):
            as_psj(parse("Sale minus Sale"))

    def test_self_join_rejected(self):
        with pytest.raises(ExpressionError):
            as_psj(parse("Sale join Sale"))

    def test_scope_type_check(self):
        with pytest.raises(ExpressionError):
            as_psj(parse("pi[ghost](Sale)"), SCOPE)


class TestPSJView:
    def test_expression_canonical_form(self):
        view = PSJView(("Sale", "Emp"), projection=("item", "age"))
        assert str(view.expression()) == "pi[item, age](Sale join Emp)"

    def test_attributes(self):
        view = PSJView(("Sale", "Emp"))
        assert view.attributes(SCOPE) == ("item", "clerk", "age")

    def test_is_sj_without_projection(self):
        assert PSJView(("Sale", "Emp")).is_sj(SCOPE)

    def test_is_sj_with_full_projection(self):
        view = PSJView(("Sale", "Emp"), projection=("age", "clerk", "item"))
        assert view.is_sj(SCOPE)

    def test_is_not_sj_with_proper_projection(self):
        view = PSJView(("Sale", "Emp"), projection=("item",))
        assert not view.is_sj(SCOPE)

    def test_involves(self):
        view = PSJView(("Sale", "Emp"))
        assert view.involves("Sale") and not view.involves("T")

    def test_retains(self):
        view = PSJView(("Sale", "Emp"), projection=("clerk", "age"))
        assert view.retains(("clerk",), SCOPE)
        assert not view.retains(("item",), SCOPE)

    def test_equality_up_to_sets(self):
        first = PSJView(("Sale", "Emp"))
        second = PSJView(("Emp", "Sale"))
        assert first == second
        assert hash(first) == hash(second)

    def test_empty_relations_rejected(self):
        with pytest.raises(ExpressionError):
            PSJView(())


class TestViewWrapper:
    def test_named_view(self):
        view = View("Sold", parse("Sale join Emp"))
        assert view.name == "Sold"
        assert view.is_psj()
        assert view.psj().relations == ("Sale", "Emp")

    def test_psj_cached(self):
        view = View("Sold", parse("Sale join Emp"))
        assert view.psj() is view.psj()

    def test_non_psj_view(self):
        view = View("U", parse("pi[clerk](Sale) union pi[clerk](Emp)"))
        assert not view.is_psj()

    def test_str(self):
        view = View("Sold", parse("Sale join Emp"))
        assert str(view) == "Sold = Sale join Emp"

    def test_equality(self):
        assert View("V", parse("Sale")) == View("V", parse("Sale"))
        assert View("V", parse("Sale")) != View("W", parse("Sale"))
