"""Chain fusion (the compiler's middle end) and the fused kernel it feeds."""

from __future__ import annotations

import pytest

from repro import Catalog, Relation, View, parse, specify
from repro.algebra.conditions import AttributeRef, Comparison, Constant
from repro.algebra.evaluator import evaluate
from repro.algebra.expressions import (
    Difference,
    Empty,
    Join,
    Project,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.algebra.optimize import fuse_chains
from repro.compiler import fused_plan
from repro.errors import ExpressionError
from repro.storage.columnar import ColumnarTable


SCOPE = {"R": ("a", "b"), "S": ("b", "c")}


class TestFuseChains:
    def test_select_chains_conjoin(self):
        fused = fuse_chains(parse("sigma[a = 1](sigma[b = 2](R))"), SCOPE)
        assert isinstance(fused, Select)
        assert isinstance(fused.child, RelationRef)
        assert str(fused) == "sigma[b = 2 and a = 1](R)"

    def test_project_chains_collapse(self):
        fused = fuse_chains(parse("pi[a](pi[a, b](R))"), SCOPE)
        assert isinstance(fused, Project)
        assert isinstance(fused.child, RelationRef)

    def test_identity_projection_disappears(self):
        fused = fuse_chains(parse("pi[a, b](R)"), SCOPE)
        assert isinstance(fused, RelationRef)

    def test_false_selection_folds_to_empty(self):
        from repro.algebra.conditions import FALSE

        fused = fuse_chains(Select(RelationRef("R"), FALSE), SCOPE)
        assert isinstance(fused, Empty)
        assert fused.attrs == ("a", "b")

    def test_true_selection_disappears(self):
        from repro.algebra.conditions import TRUE

        fused = fuse_chains(Select(RelationRef("R"), TRUE), SCOPE)
        assert isinstance(fused, RelationRef)

    def test_empty_folds_through_join(self):
        expr = Join(RelationRef("R"), Empty(("b", "c")))
        assert isinstance(fuse_chains(expr, SCOPE), Empty)

    def test_empty_folds_through_union(self):
        expr = Union(RelationRef("R"), Empty(("a", "b")))
        assert isinstance(fuse_chains(expr, SCOPE), RelationRef)

    def test_empty_right_difference_disappears(self):
        expr = Difference(RelationRef("R"), Empty(("a", "b")))
        assert isinstance(fuse_chains(expr, SCOPE), RelationRef)

    def test_empty_left_difference_is_empty(self):
        expr = Difference(Empty(("a", "b")), RelationRef("R"))
        assert isinstance(fuse_chains(expr, SCOPE), Empty)

    def test_empty_folds_through_rename(self):
        # (Identity renamings cannot even be constructed — the Rename
        # node rejects a no-op mapping at build time.)
        expr = Rename(Empty(("a", "b")), {"a": "x"})
        fused = fuse_chains(expr, SCOPE)
        assert isinstance(fused, Empty)
        assert fused.attrs == ("x", "b")

    @pytest.mark.parametrize(
        "text",
        [
            "sigma[a = 1](sigma[b = 2](R))",
            "pi[a](pi[a, b](R))",
            "pi[b](sigma[a = 1](R)) join S",
            "(R join S) union (R join S)",
            "R minus pi[a, b](R join S)",
            "rho[a -> x](sigma[a = 2](R))",
        ],
    )
    def test_fusion_preserves_semantics(self, text):
        state = {
            "R": Relation(("a", "b"), [(1, 2), (2, 2), (3, 4), (1, 5)]),
            "S": Relation(("b", "c"), [(2, 7), (4, 8), (9, 9)]),
        }
        expr = parse(text)
        fused = fuse_chains(expr, SCOPE)
        assert evaluate(fused, state) == evaluate(expr, state)


class TestFusedPlanKinds:
    @pytest.fixture
    def spec(self):
        catalog = Catalog()
        catalog.relation("R", ("a", "b"))
        catalog.relation("S", ("b", "c"))
        views = [View("V1", parse("pi[a, b](R)")), View("V2", parse("R join S"))]
        return specify(catalog, views, method="prop22")

    def test_unrelated_view_is_pruned(self, spec):
        # V1 mentions only R, so an S-shaped update provably cannot touch it.
        plan = fused_plan(spec, {"S"})
        assert plan.program_for("V1").kind == "pruned"

    def test_touched_views_are_fused(self, spec):
        plan = fused_plan(spec, {"R"})
        assert plan.program_for("V1").kind == "fused"
        assert plan.program_for("V2").kind == "fused"

    def test_trivial_complement_is_a_patch(self):
        # The trivial method stores full source copies: maintaining C_R
        # under an R update is the pure warehouse-local patch
        # w' = (w - R__del) u R__ins with no algebra to run.
        catalog = Catalog()
        catalog.relation("R", ("a", "b"))
        catalog.relation("S", ("b", "c"))
        views = [View("V2", parse("R join S"))]
        spec = specify(catalog, views, method="trivial")
        plan = fused_plan(spec, {"R"})
        assert plan.program_for("C_R").kind == "patch"
        assert plan.program_for("C_S").kind == "pruned"

    def test_describe_names_every_relation(self, spec):
        text = fused_plan(spec, {"R"}).describe()
        for name in ("V1", "V2", "C_R", "C_S"):
            assert name in text

    def test_delta_names_cover_the_shape(self, spec):
        plan = fused_plan(spec, {"R"})
        assert plan.delta_names == {"R__ins", "R__del"}


class TestSelectProjectKernel:
    @pytest.fixture
    def table(self):
        rows = [(i % 5, i, f"v{i % 3}") for i in range(40)]
        return ColumnarTable.from_relation(Relation(("k", "n", "tag"), rows))

    def test_matches_select_then_project(self, table):
        condition = Comparison(AttributeRef("k"), "=", Constant(2))
        fused = table.select_project(condition, ("tag",))
        staged = table.select(condition).project(("tag",))
        assert fused.to_relation() == staged.to_relation()

    def test_multi_attribute_projection(self, table):
        condition = Comparison(AttributeRef("n"), "<", Constant(20))
        fused = table.select_project(condition, ("tag", "k"))
        staged = table.select(condition).project(("tag", "k"))
        assert fused.to_relation() == staged.to_relation()

    def test_empty_match_keeps_schema(self, table):
        condition = Comparison(AttributeRef("k"), "=", Constant(99))
        fused = table.select_project(condition, ("n",))
        assert len(fused) == 0
        assert fused.to_relation().attributes == ("n",)

    def test_unknown_attribute_rejected(self, table):
        condition = Comparison(AttributeRef("k"), "=", Constant(1))
        with pytest.raises(ExpressionError):
            table.select_project(condition, ("missing",))

    def test_duplicate_attribute_rejected(self, table):
        condition = Comparison(AttributeRef("k"), "=", Constant(1))
        with pytest.raises(ExpressionError):
            table.select_project(condition, ("k", "k"))
