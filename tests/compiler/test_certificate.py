"""The compiler's trust anchor: certification, digests, and refusals."""

from __future__ import annotations

import pytest

from repro import Catalog, View, parse, specify
from repro.compiler import certificate_digest, certify
from repro.compiler.certificate import TRUSTED_MODE
from repro.errors import CompileError


def _two_relation_spec(method="prop22"):
    catalog = Catalog()
    catalog.relation("R", ("a", "b"))
    catalog.relation("S", ("b", "c"))
    views = [View("V1", parse("pi[a, b](R)")), View("V2", parse("R join S"))]
    return specify(catalog, views, method=method)


class TestDigest:
    def test_digest_is_deterministic(self):
        spec = _two_relation_spec()
        assert certify(spec).digest == certify(spec).digest

    def test_digest_ignores_key_order(self):
        a = {"x": 1, "y": [1, 2]}
        b = {"y": [1, 2], "x": 1}
        assert certificate_digest(a) == certificate_digest(b)

    def test_digest_changes_with_any_fact(self):
        document = {"mode": TRUSTED_MODE, "inverses": {"R": "pi[a, b](V1)"}}
        tampered = {"mode": TRUSTED_MODE, "inverses": {"R": "pi[a](V1)"}}
        assert certificate_digest(document) != certificate_digest(tampered)

    def test_different_specs_have_different_digests(self):
        sale = Catalog()
        sale.relation("Sale", ("item", "clerk"))
        sale.relation("Emp", ("clerk", "age"), key=("clerk",))
        figure1 = specify(sale, [View("Sold", parse("Sale join Emp"))], method="prop22")
        assert certify(_two_relation_spec()).digest != certify(figure1).digest

    def test_method_changes_the_digest(self):
        # prop22 and trivial derive different complements for the same
        # catalog+views, so their certificates must not collide.
        assert (
            certify(_two_relation_spec("prop22")).digest
            != certify(_two_relation_spec("trivial")).digest
        )


class TestCertify:
    def test_certificate_carries_dataflow(self):
        certificate = certify(_two_relation_spec())
        assert certificate.dataflow.update_independent
        assert certificate.document
        assert len(certificate.digest) == 64  # hex SHA-256

    def test_repr_shows_digest_prefix(self):
        certificate = certify(_two_relation_spec())
        assert certificate.digest[:12] in repr(certificate)

    def test_star_spec_is_refused(self):
        """Section 5 union views leave the PSJ fragment the prover handles."""
        from repro import parse_condition
        from repro.core.star import FactTable, star_specify

        catalog = Catalog()
        catalog.relation("Customer", ("custkey", "segment"), key=("custkey",))
        catalog.relation("OrdersN", ("loc", "okey", "custkey"), key=("okey",))
        catalog.relation("OrdersS", ("loc", "okey", "custkey"), key=("okey",))
        catalog.add_check("OrdersN", parse_condition("loc = 'N'"))
        catalog.add_check("OrdersS", parse_condition("loc = 'S'"))
        fact = FactTable(
            "Sales",
            "loc",
            {"N": parse("OrdersN"), "S": parse("OrdersS")},
        )
        spec = star_specify(catalog, [fact], [View("Dim", parse("Customer"))])
        with pytest.raises(CompileError):
            certify(spec)

    def test_refusal_is_a_repro_error(self):
        from repro.errors import ReproError

        assert issubclass(CompileError, ReproError)
