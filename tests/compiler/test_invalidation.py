"""Plan-cache invalidation: the certificate digest is the cache key.

``Warehouse.recertify()`` re-runs the prover and compares digests. These
tests drive all three verdicts — unchanged (plans survive), changed
(evict + recompile), and failed re-validation (drop to the interpreted
path) — and assert the warehouse stays correct through each transition.
"""

from __future__ import annotations

import pytest

from repro import Update, Warehouse


@pytest.fixture
def compiled_pair(figure1_catalog, figure1_database, sold_view):
    """A compiled warehouse and an interpreted reference, initialized alike."""
    compiled = Warehouse.specify(
        figure1_catalog, [sold_view], method="prop22", compile_plans=True
    )
    reference = Warehouse.specify(
        figure1_catalog, [sold_view], method="prop22", compile_plans=False
    )
    compiled.initialize(figure1_database)
    reference.initialize(figure1_database)
    return compiled, reference


def _canonical(state):
    return {name: rel.to_set() for name, rel in state.items()}


def _warm(warehouse):
    warehouse.insert("Sale", [("Radio", "Ken")])
    warehouse.insert("Emp", [("Ken", 55)])


class TestUnchangedVerdict:
    def test_recertify_same_spec_keeps_plans(self, compiled_pair):
        compiled, _ = compiled_pair
        _warm(compiled)
        before = compiled.plan_compiler
        assert before is not None and before.plan_count == 2
        assert compiled.recertify() is False
        assert compiled.plan_compiler is before
        assert compiled.plan_compiler.plan_count == 2

    def test_recertify_noop_when_compilation_off(
        self, figure1_catalog, figure1_database, sold_view
    ):
        warehouse = Warehouse.specify(
            figure1_catalog, [sold_view], compile_plans=False
        )
        warehouse.initialize(figure1_database)
        assert warehouse.recertify() is False


class TestChangedVerdict:
    def test_digest_change_evicts_and_recompiles(self, compiled_pair, monkeypatch):
        compiled, reference = compiled_pair
        _warm(compiled)
        _warm(reference)
        old = compiled.plan_compiler
        evicted = old.plan_count
        assert evicted == 2

        # Simulate a prover re-verdict that changes a recorded fact: the
        # canonical digest of the (still valid) certificate moves.
        import repro.compiler.certificate as cert_mod

        monkeypatch.setattr(
            cert_mod, "certificate_digest", lambda document: "f" * 64
        )
        assert compiled.recertify() is True
        fresh = compiled.plan_compiler
        assert fresh is not None and fresh is not old
        assert fresh.plan_count == 0  # the whole plan cache was evicted
        assert compiled.metrics.value("compiler.evictions") == evicted

        # The evicted shapes recompile on demand and stay correct.
        update = Update.insert("Sale", ("item", "clerk"), [("Camera", "Mary")])
        compiled.apply(update)
        reference.apply(update)
        assert fresh.plan_count == 1
        assert _canonical(compiled.state) == _canonical(reference.state)


class TestFailedVerdict:
    def test_failed_revalidation_falls_back_to_interpreter(
        self, compiled_pair, monkeypatch
    ):
        compiled, reference = compiled_pair
        _warm(compiled)
        _warm(reference)
        assert compiled.plan_compiler is not None

        # Simulate the prover withdrawing its verdict entirely.
        import repro.compiler.certificate as cert_mod

        monkeypatch.setattr(
            cert_mod,
            "check_certificate",
            lambda catalog, document: ["inverse R fails numeric replay"],
        )
        assert compiled.recertify() is True
        assert compiled.plan_compiler is None
        assert compiled.metrics.value("compiler.fallbacks") >= 1
        assert compiled.metrics.value("compiler.evictions") == 2

        # Refreshes keep working on the interpreted path.
        update = Update.insert("Sale", ("item", "clerk"), [("Camera", "Mary")])
        compiled.apply(update)
        reference.apply(update)
        assert _canonical(compiled.state) == _canonical(reference.state)
        assert compiled.plan_compiler is None  # no silent re-arm

    def test_recertify_can_rearm_after_fix(self, compiled_pair, monkeypatch):
        compiled, _ = compiled_pair
        _warm(compiled)
        import repro.compiler.certificate as cert_mod

        with monkeypatch.context() as patch:
            patch.setattr(
                cert_mod,
                "check_certificate",
                lambda catalog, document: ["withdrawn"],
            )
            assert compiled.recertify() is True
            assert compiled.plan_compiler is None
        # The patch is gone — the prover "accepts" the spec again.
        assert compiled.recertify() is True
        assert compiled.plan_compiler is not None
        compiled.insert("Sale", [("Camera", "Mary")])
        assert compiled.plan_compiler.plan_count == 1


class TestUncertifiableSpecFallback:
    def test_star_spec_runs_interpreted_under_compile(self):
        """A spec the prover refuses must not break the warehouse."""
        from repro import Catalog, Database, View, parse, parse_condition
        from repro.core.star import FactTable, star_specify

        catalog = Catalog()
        catalog.relation("Customer", ("custkey", "segment"), key=("custkey",))
        catalog.relation("OrdersN", ("loc", "okey", "custkey"), key=("okey",))
        catalog.relation("OrdersS", ("loc", "okey", "custkey"), key=("okey",))
        catalog.add_check("OrdersN", parse_condition("loc = 'N'"))
        catalog.add_check("OrdersS", parse_condition("loc = 'S'"))
        fact = FactTable(
            "Sales", "loc", {"N": parse("OrdersN"), "S": parse("OrdersS")}
        )
        spec = star_specify(catalog, [fact], [View("Dim", parse("Customer"))])
        warehouse = Warehouse(spec, compile_plans=True)
        db = Database(catalog)
        db.load("Customer", [(1, "RETAIL")])
        db.load("OrdersN", [("N", 10, 1)])
        db.load("OrdersS", [("S", 20, 1)])
        warehouse.initialize(db)
        warehouse.insert("OrdersN", [("N", 11, 1)])
        assert warehouse.plan_compiler is None
        assert warehouse.metrics.value("compiler.fallbacks") == 1
        assert ("N", 11, 1) in warehouse.reconstruct("OrdersN").to_set()
