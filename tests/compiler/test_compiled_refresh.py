"""Compiled refresh closures vs the interpreter, in lockstep.

The compiled path is only admissible because it computes exactly what
:func:`repro.core.maintenance.refresh_state` computes — same states, same
applied deltas, same keep-identity contract for untouched relations.
These tests replay real update streams through both and assert equality
after every step.
"""

from __future__ import annotations

import random

import pytest

from repro import Update, View, parse, specify
from repro.compiler import RefreshCompiler
from repro.core.maintenance import refresh_state
from repro.errors import WarehouseError
from repro.workloads import tpcd_instance
from repro.workloads.tpcd import order_insert_rows


def _canonical(state):
    return {name: rel.to_set() for name, rel in state.items()}


@pytest.fixture
def figure1_spec(figure1_catalog, sold_view):
    return specify(figure1_catalog, [sold_view], method="prop22")


class TestLockstepEquality:
    def test_figure1_random_stream(self, figure1_spec, figure1_database):
        compiler = RefreshCompiler(figure1_spec)
        from repro.algebra.evaluator import evaluate_all

        state = evaluate_all(
            figure1_spec.definitions_over_sources(), figure1_database.state()
        )
        compiled_state = dict(state)
        rng = random.Random(4)
        items = ["TV set", "VCR", "PC", "Radio", "Camera"]
        clerks = ["Mary", "John", "Paula", "Ken"]
        for step in range(30):
            relation, attrs = rng.choice(
                [("Sale", ("item", "clerk")), ("Emp", ("clerk", "age"))]
            )
            if relation == "Sale":
                rows = [(rng.choice(items), rng.choice(clerks))]
            else:
                rows = [(rng.choice(clerks), rng.randrange(20, 60))]
            maker = Update.insert if rng.random() < 0.6 else Update.delete
            update = maker(relation, attrs, rows)
            state, applied = refresh_state(figure1_spec, state, update)
            compiled_state, compiled_applied = compiler.refresh(
                compiled_state, update
            )
            assert _canonical(compiled_state) == _canonical(state), step
            assert set(compiled_applied) == set(applied), step

    def test_tpcd_stream(self):
        inst = tpcd_instance(scale=0.5, seed=11)
        spec = specify(inst.catalog, inst.views)
        compiler = RefreshCompiler(spec)
        from repro.algebra.evaluator import evaluate_all

        state = evaluate_all(spec.definitions_over_sources(), inst.database.state())
        compiled_state = dict(state)
        rng = random.Random(5)
        for _ in range(4):
            orders, lines = order_insert_rows(rng, inst.database, count=2)
            for update in (
                inst.database.insert("Orders", orders),
                inst.database.insert("Lineitem", lines),
            ):
                state, _ = refresh_state(spec, state, update)
                compiled_state, _ = compiler.refresh(compiled_state, update)
                assert _canonical(compiled_state) == _canonical(state)

    def test_untouched_relations_keep_identity(self, figure1_spec, figure1_database):
        compiler = RefreshCompiler(figure1_spec)
        from repro.algebra.evaluator import evaluate_all

        state = evaluate_all(
            figure1_spec.definitions_over_sources(), figure1_database.state()
        )
        update = Update.insert("Sale", ("item", "clerk"), [("Radio", "Paula")])
        new_state, applied = compiler.refresh(state, update)
        for name in state:
            if name not in applied:
                # The refresh_state contract: relations the update does not
                # change are carried over as the *same object*, preserving
                # their attached caches/indexes.
                assert new_state[name] is state[name]

    def test_noop_update_returns_copy(self, figure1_spec, figure1_database):
        compiler = RefreshCompiler(figure1_spec)
        from repro.algebra.evaluator import evaluate_all

        state = evaluate_all(
            figure1_spec.definitions_over_sources(), figure1_database.state()
        )
        noop = Update.delete("Sale", ("item", "clerk"), [("Nothing", "Nobody")])
        new_state, applied = compiler.refresh(state, noop)
        assert applied == {}
        assert _canonical(new_state) == _canonical(state)


class TestPlanCache:
    def test_shapes_compile_once(self, figure1_spec, figure1_database):
        compiler = RefreshCompiler(figure1_spec)
        from repro.algebra.evaluator import evaluate_all

        state = evaluate_all(
            figure1_spec.definitions_over_sources(), figure1_database.state()
        )
        updates = [
            Update.insert("Sale", ("item", "clerk"), [("Radio", "Ken")]),
            Update.insert("Emp", ("clerk", "age"), [("Ken", 55)]),
            Update.insert("Sale", ("item", "clerk"), [("Camera", "Ken")]),
            Update.insert("Sale", ("item", "clerk"), [("Phone", "Mary")]),
            Update.insert("Emp", ("clerk", "age"), [("Lena", 41)]),
        ]
        for update in updates:
            state, _ = compiler.refresh(state, update)
        assert compiler.compiles == 2
        assert compiler.plan_hits == 3
        assert compiler.refreshes == 5
        assert compiler.plan_count == 2
        assert set(compiler.cached_shapes()) == {
            frozenset({"Sale"}),
            frozenset({"Emp"}),
        }

    def test_digest_is_stable_across_refreshes(self, figure1_spec, figure1_database):
        compiler = RefreshCompiler(figure1_spec)
        before = compiler.digest
        from repro.algebra.evaluator import evaluate_all

        state = evaluate_all(
            figure1_spec.definitions_over_sources(), figure1_database.state()
        )
        update = Update.insert("Sale", ("item", "clerk"), [("Radio", "Ken")])
        compiler.refresh(state, update)
        assert compiler.digest == before

    def test_unknown_relation_rejected(self, figure1_spec, figure1_database):
        compiler = RefreshCompiler(figure1_spec)
        from repro.algebra.evaluator import evaluate_all

        state = evaluate_all(
            figure1_spec.definitions_over_sources(), figure1_database.state()
        )
        bogus = Update.insert("Ghost", ("x",), [(1,)])
        with pytest.raises(WarehouseError):
            compiler.refresh(state, bogus)
