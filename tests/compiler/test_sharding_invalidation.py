"""Sharding certificates drive the compiled-plan cache, cross-shard.

The sharding certificate's canonical digest is the same
:func:`~repro.analysis.digest.canonical_digest` that keys the PR-7 plan
cache. :meth:`ShardedWarehouse.recertify` therefore treats a changed
sharding digest exactly like a changed compiler certificate: every shard's
compiled closures are evicted. A certificate that records *refuted* batch
commutativity goes further — after evicting it refuses the certificate
outright, because concurrent use of the layout would be order-dependent.
"""

from __future__ import annotations

import pytest

from repro import Relation, Update, View, Warehouse, WarehouseError, parse
from repro.analysis.concurrency import prove_sharding_target
from repro.analysis.specfile import LintTarget, RoutingSpec, ShardingOptions
from repro.core.sharding import ShardedWarehouse, ShardRouting

VIEWS = [View("Sold", parse("Sale join Emp"))]

INIT = {
    "Sale": Relation(("item", "clerk"), [("TV", "Mary"), ("Car", "Ann")]),
    "Emp": Relation(("clerk", "age"), [("Mary", 23), ("Ann", 31)]),
}


def certificate_for(catalog, sources=None):
    result = prove_sharding_target(
        LintTarget(
            "spec.json",
            catalog,
            VIEWS,
            {},
            sharding=ShardingOptions(
                routings=(RoutingSpec("Sale", "item", shards=2),),
                expect="refuted" if sources else "proved",
                sources=sources,
            ),
        )
    )
    return result


def make_sharded(catalog, compile_plans=True):
    warehouse = ShardedWarehouse.specify(
        catalog,
        VIEWS,
        routings=[ShardRouting("Sale", "item", shards=2)],
        compile_plans=compile_plans,
    )
    warehouse.initialize(INIT)
    return warehouse


def warm(warehouse):
    warehouse.insert("Sale", [("Radio", "Mary")])
    warehouse.insert("Emp", [("Zoe", 28)])


def total_plans(warehouse):
    return sum(
        shard.plan_compiler.plan_count
        for shard in warehouse.shards
        if shard.plan_compiler is not None
    )


class TestEvictPlans:
    def test_returns_evicted_count_and_keeps_certificate(
        self, figure1_catalog
    ):
        warehouse = Warehouse.specify(
            figure1_catalog, VIEWS, method="prop22", compile_plans=True
        )
        warehouse.initialize(INIT)
        warm(warehouse)
        compiler = warehouse.plan_compiler
        assert compiler is not None and compiler.plan_count > 0
        evicted = warehouse.evict_plans()
        assert evicted == compiler.plan_count
        assert warehouse.plan_compiler is not compiler
        assert warehouse.plan_compiler.plan_count == 0
        assert (
            warehouse.plan_compiler.certificate.digest
            == compiler.certificate.digest
        )
        assert warehouse.metrics.value("compiler.evictions") == evicted
        # The warehouse still refreshes correctly on rebuilt closures.
        warehouse.insert("Sale", [("Amp", "Zoe")])

    def test_zero_when_compilation_off(self, figure1_catalog):
        warehouse = Warehouse.specify(
            figure1_catalog, VIEWS, compile_plans=False
        )
        warehouse.initialize(INIT)
        assert warehouse.evict_plans() == 0

    def test_zero_when_nothing_cached(self, figure1_catalog):
        warehouse = Warehouse.specify(
            figure1_catalog, VIEWS, method="prop22", compile_plans=True
        )
        warehouse.initialize(INIT)
        assert warehouse.evict_plans() == 0


class TestShardedRecertify:
    def test_first_certificate_is_accepted_without_eviction(
        self, figure1_catalog
    ):
        warehouse = make_sharded(figure1_catalog)
        warm(warehouse)
        plans_before = total_plans(warehouse)
        assert plans_before > 0
        result = certificate_for(figure1_catalog)
        assert result.verdict == "PROVED"
        assert warehouse.recertify(result.certificate) is True
        assert total_plans(warehouse) == plans_before

    def test_same_digest_keeps_plans(self, figure1_catalog):
        warehouse = make_sharded(figure1_catalog)
        warm(warehouse)
        certificate = certificate_for(figure1_catalog).certificate
        warehouse.recertify(certificate)
        plans_before = total_plans(warehouse)
        assert warehouse.recertify(dict(certificate)) is False
        assert total_plans(warehouse) == plans_before

    def test_changed_digest_evicts_every_shard(self, figure1_catalog):
        warehouse = make_sharded(figure1_catalog)
        warm(warehouse)
        certificate = certificate_for(figure1_catalog).certificate
        warehouse.recertify(certificate)
        assert total_plans(warehouse) > 0
        tampered = dict(certificate)
        tampered["shards"] = 3
        assert warehouse.recertify(tampered) is True
        assert total_plans(warehouse) == 0
        assert warehouse.metrics.value("warehouse.plan_evictions") > 0
        # Refreshes still work (closures rebuild lazily per shape).
        warehouse.insert("Sale", [("Amp", "Zoe")])

    def test_refuted_commutativity_certificate_is_refused(
        self, figure1_catalog
    ):
        warehouse = make_sharded(figure1_catalog)
        warm(warehouse)
        warehouse.recertify(certificate_for(figure1_catalog).certificate)
        refuted = dict(certificate_for(figure1_catalog).certificate)
        refuted["commutativity"] = dict(refuted["commutativity"])
        refuted["commutativity"]["commute"] = False
        with pytest.raises(WarehouseError, match="refutes batch commutativity"):
            warehouse.recertify(refuted)
        # The digest changed, so the plans were evicted before the refusal.
        assert total_plans(warehouse) == 0

    def test_argument_free_recertify_folds_shard_verdicts(
        self, figure1_catalog
    ):
        warehouse = make_sharded(figure1_catalog)
        warm(warehouse)
        assert warehouse.recertify() is False
