"""Property tests: ``Update.compose`` is a faithful fold for batches.

The batch paths (``Warehouse.apply_batch``, the async integrator's
net-batch folding) rely on one algebraic fact: composing a sequence of
updates in *any* grouping yields one update whose effect equals applying
the sequence one by one. These properties pin that down — sequential
faithfulness, associativity, arbitrary split points (1+N, N+1, random
partitions), and the delete-then-reinsert chains that make naive
"union the deltas" folding wrong.
"""

from __future__ import annotations

from functools import reduce
from typing import Dict, List, Sequence

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Delta, Relation, Update

from .strategies import relation

SCHEMAS = {"R": ("a", "b"), "S": ("b", "c")}


def delta(name: str):
    attrs = SCHEMAS[name]
    return st.tuples(
        relation(attrs, max_rows=3), relation(attrs, max_rows=3)
    ).map(lambda pair: Delta(name, inserts=pair[0], deletes=pair[1]))


def update():
    """An update touching a random subset of the two relations."""
    return st.sets(st.sampled_from(sorted(SCHEMAS)), max_size=2).flatmap(
        lambda names: st.tuples(*[delta(n) for n in sorted(names)]).map(Update)
    )


def updates(min_size: int = 0, max_size: int = 5):
    return st.lists(update(), min_size=min_size, max_size=max_size)


def state():
    return st.fixed_dictionaries(
        {name: relation(attrs) for name, attrs in SCHEMAS.items()}
    )


def apply_sequential(
    base: Dict[str, Relation], sequence: Sequence[Update]
) -> Dict[str, Relation]:
    current = dict(base)
    for upd in sequence:
        for d in upd:
            current[d.relation] = d.apply_to(current[d.relation])
    return current


def fold(sequence: Sequence[Update]) -> Update:
    return reduce(Update.compose, sequence, Update(()))


def assert_same_update(left: Update, right: Update) -> None:
    """Structural equality: same touched relations, same net deltas."""
    assert set(left.relations()) == set(right.relations())
    for name in left.relations():
        l, r = left.delta_for(name), right.delta_for(name)
        assert l.inserts == r.inserts, f"{name}: inserts differ"
        assert l.deletes == r.deletes, f"{name}: deletes differ"


class TestComposeFaithfulness:
    @given(state(), updates(max_size=4))
    @settings(max_examples=150)
    def test_fold_equals_sequential_application(self, base, sequence):
        folded = fold(sequence)
        assert apply_sequential(base, [folded]) == apply_sequential(
            base, sequence
        )

    @given(update(), update(), update())
    @settings(max_examples=150)
    def test_compose_is_associative(self, u1, u2, u3):
        assert_same_update(
            u1.compose(u2).compose(u3), u1.compose(u2.compose(u3))
        )


class TestBatchSplits:
    @given(updates(min_size=1, max_size=5))
    @settings(max_examples=100)
    def test_head_plus_rest_split(self, sequence):
        """1+N: peeling the first update off the batch changes nothing."""
        assert_same_update(
            fold(sequence), sequence[0].compose(fold(sequence[1:]))
        )

    @given(updates(min_size=1, max_size=5))
    @settings(max_examples=100)
    def test_rest_plus_tail_split(self, sequence):
        """N+1: folding all-but-last, then the last, changes nothing."""
        assert_same_update(
            fold(sequence), fold(sequence[:-1]).compose(sequence[-1])
        )

    @given(
        updates(max_size=6),
        st.lists(st.integers(min_value=0, max_value=6), max_size=3),
    )
    @settings(max_examples=100)
    def test_random_partition_into_sub_batches(self, sequence, cut_points):
        """Any consecutive partition folds to the same net update."""
        cuts = sorted(set(min(c, len(sequence)) for c in cut_points))
        bounds = [0] + cuts + [len(sequence)]
        chunks: List[Sequence[Update]] = [
            sequence[lo:hi] for lo, hi in zip(bounds, bounds[1:])
        ]
        assert_same_update(fold(sequence), fold([fold(c) for c in chunks]))


class TestDeleteThenReinsertChains:
    @given(relation(("a", "b"), max_rows=4), relation(("a", "b"), max_rows=3))
    @settings(max_examples=100)
    def test_delete_insert_delete_insert_net(self, base, rows):
        """Alternating delete/reinsert of the same rows nets to an insert.

        This is the case a naive "union all inserts, union all deletes"
        fold gets wrong: the surviving operation is whichever came last.
        """
        values = list(rows.rows)
        chain = [
            Update.delete("R", ("a", "b"), values),
            Update.insert("R", ("a", "b"), values),
            Update.delete("R", ("a", "b"), values),
            Update.insert("R", ("a", "b"), values),
        ]
        folded = fold(chain)
        assert apply_sequential({"R": base}, [folded]) == apply_sequential(
            {"R": base}, chain
        )
        if values:
            net = folded.delta_for("R")
            assert net.inserts == rows  # last op wins
            assert not net.deletes

    @given(state(), updates(min_size=2, max_size=4), st.data())
    @settings(max_examples=100)
    def test_every_split_point_preserves_effect(self, base, sequence, data):
        k = data.draw(st.integers(min_value=0, max_value=len(sequence)))
        split = fold(sequence[:k]).compose(fold(sequence[k:]))
        assert apply_sequential(base, [split]) == apply_sequential(
            base, sequence
        )
