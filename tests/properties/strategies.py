"""Shared hypothesis strategies for the property-based suites.

Fixed small schemata with tiny value domains — the interesting structure in
this library is relational, not arithmetic, and tiny domains maximize
collision/join coverage per example.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro import Relation

VALUES = st.integers(min_value=0, max_value=2)


def relation(attrs, max_rows: int = 6):
    """A strategy for relations over ``attrs`` with tiny integer values."""
    row = st.tuples(*[VALUES for _ in attrs])
    return st.frozensets(row, max_size=max_rows).map(
        lambda rows: Relation(tuple(attrs), rows)
    )


def keyed_relation(attrs, key_positions, max_rows: int = 6):
    """Like :func:`relation` but at most one row per key value."""

    def dedupe(rows):
        seen = {}
        for r in sorted(rows, key=repr):
            seen[tuple(r[p] for p in key_positions)] = r
        return Relation(tuple(attrs), seen.values())

    row = st.tuples(*[VALUES for _ in attrs])
    return st.frozensets(row, max_size=max_rows).map(dedupe)


def state_RS():
    """States over R(a, b), S(b, c)."""
    return st.fixed_dictionaries(
        {"R": relation(("a", "b")), "S": relation(("b", "c"))}
    )


def state_RST():
    """States over R(X, Y), S(Y, Z), T(Z) — the Example 2.1 schema."""
    return st.fixed_dictionaries(
        {
            "R": relation(("X", "Y")),
            "S": relation(("Y", "Z")),
            "T": relation(("Z",), max_rows=3),
        }
    )
