"""Shared hypothesis strategies for the property-based suites.

Fixed small schemata with tiny value domains — the interesting structure in
this library is relational, not arithmetic, and tiny domains maximize
collision/join coverage per example.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro import Relation

VALUES = st.integers(min_value=0, max_value=2)


def relation(attrs, max_rows: int = 6):
    """A strategy for relations over ``attrs`` with tiny integer values."""
    row = st.tuples(*[VALUES for _ in attrs])
    return st.frozensets(row, max_size=max_rows).map(
        lambda rows: Relation(tuple(attrs), rows)
    )


def keyed_relation(attrs, key_positions, max_rows: int = 6):
    """Like :func:`relation` but at most one row per key value."""

    def dedupe(rows):
        seen = {}
        for r in sorted(rows, key=repr):
            seen[tuple(r[p] for p in key_positions)] = r
        return Relation(tuple(attrs), seen.values())

    row = st.tuples(*[VALUES for _ in attrs])
    return st.frozensets(row, max_size=max_rows).map(dedupe)


POOL = ("a", "b", "c", "d", "e")


def schema():
    """A strategy for small attribute tuples drawn from a shared pool.

    Drawing both operands of a join from the same pool yields every overlap
    regime: identical schemata, partial overlap, and fully disjoint
    schemata (where a natural join degenerates to the cartesian product).
    """
    return (
        st.sets(st.sampled_from(POOL), min_size=1, max_size=3)
        .flatmap(lambda attrs: st.permutations(sorted(attrs)))
        .map(tuple)
    )


def relation_over_random_schema(max_rows: int = 6):
    """A relation over a random :func:`schema` (random column order too)."""
    return schema().flatmap(lambda attrs: relation(attrs, max_rows=max_rows))


def relation_pair(max_rows: int = 6):
    """Two independently-drawn relations, schemas possibly overlapping."""
    return st.tuples(
        relation_over_random_schema(max_rows), relation_over_random_schema(max_rows)
    )


def state_RS():
    """States over R(a, b), S(b, c)."""
    return st.fixed_dictionaries(
        {"R": relation(("a", "b")), "S": relation(("b", "c"))}
    )


def state_RST():
    """States over R(X, Y), S(Y, Z), T(Z) — the Example 2.1 schema."""
    return st.fixed_dictionaries(
        {
            "R": relation(("X", "Y")),
            "S": relation(("Y", "Z")),
            "T": relation(("Z",), max_rows=3),
        }
    )
