"""Property-based tests: algebraic laws of the relation engine."""

from __future__ import annotations

from hypothesis import given, settings

from repro import Relation

from .strategies import relation

R_AB = relation(("a", "b"))
R_AB2 = relation(("a", "b"))
R_AB3 = relation(("a", "b"))
R_BC = relation(("b", "c"))


@given(R_AB, R_AB2)
def test_union_commutative(x, y):
    assert x.union(y) == y.union(x)


@given(R_AB, R_AB2, R_AB3)
def test_union_associative(x, y, z):
    assert x.union(y).union(z) == x.union(y.union(z))


@given(R_AB)
def test_union_idempotent(x):
    assert x.union(x) == x


@given(R_AB, R_AB2)
def test_difference_union_partition(x, y):
    # (x - y) ∪ (x ∩ y) == x
    assert x.difference(y).union(x.intersection(y)) == x


@given(R_AB, R_AB2)
def test_intersection_via_difference(x, y):
    assert x.intersection(y) == x.difference(x.difference(y))


@given(R_AB, R_BC)
def test_join_commutative(x, y):
    assert x.natural_join(y) == y.natural_join(x)


@given(R_AB, R_BC)
def test_join_tuples_restrict_to_sources(x, y):
    joined = x.natural_join(y)
    assert joined.project_or_empty(("a", "b")).rows <= x.rows
    proj = joined.project_or_empty(("b", "c"))
    assert proj.rows <= proj._aligned_rows(y)


@given(R_AB)
def test_self_join_identity(x):
    assert x.natural_join(x) == x


@given(R_AB)
def test_projection_monotone_cardinality(x):
    assert len(x.project(("a",))) <= len(x)


@given(R_AB)
def test_rename_roundtrip(x):
    assert x.rename({"a": "z"}).rename({"z": "a"}) == x


@given(R_AB, R_AB2)
def test_union_cardinality_bounds(x, y):
    u = x.union(y)
    assert max(len(x), len(y)) <= len(u) <= len(x) + len(y)


@given(R_AB)
def test_reorder_preserves_equality(x):
    assert x.reorder(("b", "a")) == x
