"""Property-based replay of the checked-in translation certificates.

Every PROVED certificate in ``tests/analysis/golden/certificates/`` claims
the Theorem 3.1 equality: the query over the sources equals the translated
forms over the warehouse image *alone*. The prover already replays three
seeded databases when issuing the verdict; here Hypothesis drives many
more randomized constraint-satisfying databases (via the same
:func:`repro.workloads.generator.random_database` the replay uses, so keys
and inclusion dependencies hold) against the *golden* documents — the
certificates a consumer would actually trust.
"""

from __future__ import annotations

import json
from functools import lru_cache
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.evaluator import evaluate, evaluate_all
from repro.algebra.parser import parse
from repro.analysis.specfile import load_target
from repro.workloads.generator import random_database

REPO = Path(__file__).parents[2]
SPEC_DIR = REPO / "examples" / "specs"
GOLDEN_DIR = REPO / "tests" / "analysis" / "golden" / "certificates"

CASES = [
    pytest.param(path.name[: -len(".query.json")], entry,
                 id=f"{path.name[:-len('.query.json')]}:{entry['name']}")
    for path in sorted(GOLDEN_DIR.glob("*.query.json"))
    for entry in json.loads(path.read_text())["queries"]
    if entry["verdict"] == "PROVED"
]


@lru_cache(maxsize=None)
def catalog_for(stem):
    return load_target(str(SPEC_DIR / f"{stem}.json")).catalog


def test_there_are_proved_certificates():
    assert CASES, "no PROVED golden certificate to property-test"


@pytest.mark.parametrize(("stem", "entry"), CASES)
@given(seed=st.integers(min_value=0, max_value=999_999),
       rows=st.integers(min_value=0, max_value=15))
@settings(max_examples=25, deadline=None)
def test_proved_certificates_replay_on_random_databases(stem, entry, seed, rows):
    catalog = catalog_for(stem)
    certificate = entry["certificate"]
    definitions = {
        name: parse(text) for name, text in certificate["warehouse"].items()
    }
    query = parse(certificate["query"])
    translated = parse(certificate["translated"])
    optimized = parse(certificate["optimized"])
    state = random_database(
        seed, catalog, rows_per_relation=rows, domain_size=6
    ).state()
    image = evaluate_all(definitions, state)
    merged = dict(state)
    merged.update(image)
    expected = evaluate(query, merged)
    # Theorem 3.1: both recorded forms answer from the image alone.
    assert evaluate(translated, image) == expected
    assert evaluate(optimized, image) == expected


@pytest.mark.parametrize(("stem", "entry"), CASES)
def test_proved_certificates_are_warehouse_only(stem, entry):
    certificate = entry["certificate"]
    sources = set(catalog_for(stem).relation_names())
    warehouse = set(certificate["warehouse"])
    for label in ("translated", "optimized"):
        refs = parse(certificate[label]).relation_names()
        assert not (refs & sources), f"{label} reads a source relation"
        assert refs <= warehouse
    assert set(certificate["read_set"]) == parse(
        certificate["optimized"]
    ).relation_names()
