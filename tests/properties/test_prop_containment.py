"""Property-based tests: CQ containment agrees with evaluation.

For random PSJ-with-union expression pairs, whenever the exact containment
test says ``sub <= sup``, every generated state must witness the inclusion;
whenever it says no, hypothesis hunts (and occasionally finds) a state
violating the inclusion — but absence of a counterexample is not asserted
(small states may not separate the queries).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import evaluate
from repro.algebra.containment import UnsupportedFragment, is_contained_in
from repro.algebra.expressions import (
    Join,
    Project,
    RelationRef,
    Select,
    Union,
)
from repro.algebra.conditions import Comparison, attr, const

from .strategies import state_RS

SCOPE = {"R": ("a", "b"), "S": ("b", "c")}


def cq_expressions(depth: int):
    leaves = st.sampled_from([RelationRef("R"), RelationRef("S")])
    if depth == 0:
        return leaves
    sub = cq_expressions(depth - 1)

    def combine(args):
        kind, left, right, value = args
        left_attrs = frozenset(left.attributes(SCOPE))
        right_attrs = frozenset(right.attributes(SCOPE))
        if kind == "join":
            return Join(left, right)
        if kind == "union" and left_attrs == right_attrs:
            return Union(left, right)
        if kind == "select":
            chosen = sorted(left_attrs)[0]
            return Select(left, Comparison(attr(chosen), "=", const(value)))
        if kind == "project":
            keep = sorted(left_attrs)[: 1 + value % len(left_attrs)]
            return Project(left, tuple(keep))
        return left

    return st.tuples(
        st.sampled_from(["join", "union", "select", "project"]),
        sub,
        sub,
        st.integers(0, 2),
    ).map(combine)


@given(cq_expressions(2), cq_expressions(2), state_RS())
@settings(max_examples=150, deadline=None)
def test_positive_containment_sound(sub, sup, state):
    try:
        sub_attrs = frozenset(sub.attributes(SCOPE))
        sup_attrs = frozenset(sup.attributes(SCOPE))
    except Exception:
        return
    if sub_attrs != sup_attrs:
        return
    try:
        contained = is_contained_in(sub, sup, SCOPE)
    except UnsupportedFragment:
        return
    if contained:
        left = evaluate(sub, state)
        right = evaluate(sup, state)
        assert left.rows <= left._aligned_rows(right), (str(sub), str(sup))


@given(cq_expressions(2))
@settings(max_examples=60, deadline=None)
def test_reflexive(expr):
    try:
        expr.attributes(SCOPE)
        assert is_contained_in(expr, expr, SCOPE)
    except UnsupportedFragment:
        pass


@given(cq_expressions(1), cq_expressions(1))
@settings(max_examples=80, deadline=None)
def test_union_upper_bound(left, right):
    try:
        if frozenset(left.attributes(SCOPE)) != frozenset(right.attributes(SCOPE)):
            return
        combined = Union(left, right)
        assert is_contained_in(left, combined, SCOPE)
        assert is_contained_in(right, combined, SCOPE)
    except UnsupportedFragment:
        pass
