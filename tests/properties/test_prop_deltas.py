"""Property-based tests: delta rules are exact for arbitrary expressions.

Hypothesis generates random expression trees over R(a, b) and S(b, c), a
random state, and random effective deltas; the derived insert/delete
expressions must equal ``new - old`` / ``old - new`` exactly.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Relation, evaluate
from repro.algebra.conditions import Comparison, attr, const
from repro.algebra.deltas import del_name, derive_delta, ins_name
from repro.algebra.expressions import (
    Difference,
    Join,
    Project,
    RelationRef,
    Select,
    Union,
)

from .strategies import relation

SCOPE = {"R": ("a", "b"), "S": ("b", "c")}


def expressions(depth: int):
    """Random well-typed expressions over R and S."""
    leaves = st.sampled_from([RelationRef("R"), RelationRef("S")])
    if depth == 0:
        return leaves

    sub = expressions(depth - 1)

    def combine(children_and_kind):
        kind, left, right, attribute, value = children_and_kind
        left_attrs = frozenset(left.attributes(SCOPE))
        right_attrs = frozenset(right.attributes(SCOPE))
        if kind == "join":
            return Join(left, right)
        if kind == "union" and left_attrs == right_attrs:
            return Union(left, right)
        if kind == "difference" and left_attrs == right_attrs:
            return Difference(left, right)
        if kind == "select":
            chosen = sorted(left_attrs)[0]
            return Select(left, Comparison(attr(chosen), "=", const(value)))
        if kind == "project":
            keep = sorted(left_attrs)[: 1 + value % len(left_attrs)]
            return Project(left, tuple(keep))
        return left

    return st.tuples(
        st.sampled_from(["join", "union", "difference", "select", "project"]),
        sub,
        sub,
        st.integers(0, 1),
        st.integers(0, 2),
    ).map(combine)


def effective_deltas(current: Relation, rows):
    inserts = Relation(current.attributes, [r for r in rows if r not in current])
    pool = sorted(current.rows, key=repr)
    deletes = Relation(current.attributes, pool[: len(rows) % (len(pool) + 1)])
    return inserts, deletes


@given(
    expressions(2),
    relation(("a", "b")),
    relation(("b", "c")),
    st.frozensets(st.tuples(st.integers(0, 2), st.integers(0, 2)), max_size=3),
    st.frozensets(st.tuples(st.integers(0, 2), st.integers(0, 2)), max_size=3),
)
@settings(max_examples=120, deadline=None)
def test_delta_rules_exact(expr, r, s, r_rows, s_rows):
    state = {"R": r, "S": s}
    r_ins, r_del = effective_deltas(r, r_rows)
    s_ins, s_del = effective_deltas(s, s_rows)
    bindings = {
        ins_name("R"): r_ins,
        del_name("R"): r_del,
        ins_name("S"): s_ins,
        del_name("S"): s_del,
    }
    new_state = {
        "R": r.difference(r_del).union(r_ins),
        "S": s.difference(s_del).union(s_ins),
    }
    derived = derive_delta(expr, ["R", "S"], SCOPE)
    combined = dict(state)
    combined.update(bindings)
    old_value = evaluate(expr, state)
    new_value = evaluate(expr, new_state)
    assert evaluate(derived.inserts, combined) == new_value.difference(old_value)
    assert evaluate(derived.deletes, combined) == old_value.difference(new_value)
