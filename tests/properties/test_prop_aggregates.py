"""Property-based tests: incremental aggregates equal recomputation.

Hypothesis drives random delta streams against an :class:`AggregateView`
and checks, after every step, that the incrementally maintained table
matches a from-scratch recomputation over the evolved fact relation —
covering group birth/death, extremum deletion repair, and sum/count/avg
arithmetic in one invariant.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Relation
from repro.storage.update import Delta
from repro.core.aggregates import (
    AggregateView,
    agg_avg,
    agg_max,
    agg_min,
    agg_sum,
    count,
)

ROW = st.tuples(st.integers(0, 2), st.integers(0, 9))


def make_view() -> AggregateView:
    return AggregateView(
        "A",
        "F",
        ("g",),
        [count(), agg_sum("v"), agg_avg("v"), agg_min("v"), agg_max("v")],
    )


@given(
    st.frozensets(ROW, max_size=6),
    st.lists(
        st.tuples(st.frozensets(ROW, max_size=3), st.frozensets(ROW, max_size=3)),
        max_size=6,
    ),
)
@settings(max_examples=100, deadline=None)
def test_incremental_equals_recompute(initial_rows, steps):
    fact = Relation(("g", "v"), initial_rows)
    incremental = make_view()
    incremental.recompute(fact)
    for raw_inserts, raw_deletes in steps:
        inserts = Relation(("g", "v"), [r for r in raw_inserts if r not in fact])
        deletes = Relation(
            ("g", "v"), [r for r in raw_deletes if r in fact and r not in inserts]
        )
        delta = Delta("F", inserts=inserts, deletes=deletes)
        fact = fact.difference(deletes).union(inserts)
        incremental.apply_delta(delta, fact)

        reference = make_view()
        reference.recompute(fact)
        assert incremental.table() == reference.table()


@given(st.frozensets(ROW, max_size=8))
@settings(max_examples=60, deadline=None)
def test_table_shape_invariants(rows):
    fact = Relation(("g", "v"), rows)
    view = make_view()
    view.recompute(fact)
    table = view.table()
    groups = {row[0] for row in fact}
    assert {row[0] for row in table} == groups
    for g, n, total, avg, lo, hi in table.rows:
        values = [v for (gg, v) in fact if gg == g]
        assert n == len(values)
        assert total == sum(values)
        assert lo == min(values) and hi == max(values)
        assert avg == total / n
