"""Property tests: indexed joins agree with their nested-loop definitions.

The hash-indexed ``natural_join``, ``semi_join``, and ``anti_join`` on
:class:`Relation` are performance machinery; the ground truth is the
textbook nested-loop definition over named attributes. Random schemata from
a shared pool cover every overlap regime — equal attribute sets, partial
overlap, and disjoint schemata (empty join key: cartesian-product
semantics).
"""

from __future__ import annotations

from hypothesis import given, settings

from repro import Relation

from .strategies import relation_pair


def naive_natural_join(a: Relation, b: Relation) -> Relation:
    """The nested-loop definition of the natural join."""
    shared = [x for x in a.attributes if x in b.attribute_set]
    extra = [x for x in b.attributes if x not in a.attribute_set]
    a_pos = [a.attributes.index(x) for x in shared]
    b_pos = [b.attributes.index(x) for x in shared]
    e_pos = [b.attributes.index(x) for x in extra]
    rows = []
    for ra in a.rows:
        for rb in b.rows:
            if all(ra[i] == rb[j] for i, j in zip(a_pos, b_pos)):
                rows.append(tuple(ra) + tuple(rb[k] for k in e_pos))
    return Relation(a.attributes + tuple(extra), rows)


def naive_semi_join(a: Relation, b: Relation) -> Relation:
    """Nested-loop semi-join: rows of ``a`` with at least one partner."""
    shared = [x for x in a.attributes if x in b.attribute_set]
    a_pos = [a.attributes.index(x) for x in shared]
    b_pos = [b.attributes.index(x) for x in shared]
    rows = [
        ra
        for ra in a.rows
        if any(
            all(ra[i] == rb[j] for i, j in zip(a_pos, b_pos)) for rb in b.rows
        )
    ]
    return Relation(a.attributes, rows)


@settings(max_examples=200)
@given(relation_pair())
def test_natural_join_matches_nested_loop(pair):
    a, b = pair
    assert a.natural_join(b) == naive_natural_join(a, b)


@settings(max_examples=200)
@given(relation_pair())
def test_semi_join_matches_nested_loop(pair):
    a, b = pair
    assert a.semi_join(b) == naive_semi_join(a, b)


@settings(max_examples=200)
@given(relation_pair())
def test_anti_join_is_complement_of_semi_join(pair):
    a, b = pair
    semi = a.semi_join(b)
    anti = a.anti_join(b)
    assert anti == a.difference(semi)
    assert semi.union(anti) == a
    assert not semi.intersection(anti)


@settings(max_examples=200)
@given(relation_pair())
def test_semi_join_is_projected_join(pair):
    # The algebraic identity the evaluator's fast path relies on:
    # a ⋉ b == pi_{attr(a)}(a ⋈ b).
    a, b = pair
    assert a.semi_join(b) == a.natural_join(b).project(a.attributes)


@settings(max_examples=200)
@given(relation_pair())
def test_anti_join_is_difference_with_projected_join(pair):
    # The Proposition 2.2 complement shape: a ▷ b == a - pi_{attr(a)}(a ⋈ b).
    a, b = pair
    assert a.anti_join(b) == a.difference(a.natural_join(b).project(a.attributes))


@settings(max_examples=200)
@given(relation_pair())
def test_join_is_symmetric_up_to_column_order(pair):
    a, b = pair
    assert a.natural_join(b) == b.natural_join(a)


@settings(max_examples=100)
@given(relation_pair())
def test_index_reuse_does_not_corrupt_results(pair):
    # Exercise the per-attribute-set index cache: run the same joins twice
    # (second run served from _index_cache) and in both probe directions.
    a, b = pair
    first = a.natural_join(b)
    second = a.natural_join(b)
    assert first == second
    assert a.semi_join(b) == a.semi_join(b)
    assert a.anti_join(b) == a.anti_join(b)
    # Mixing operations over the same shared attribute set shares buckets.
    assert a.semi_join(b).union(a.anti_join(b)) == a
