"""Property-based soundness of the static satisfiability analysis.

:func:`repro.analysis.satisfiability.unsatisfiable_reason` is sound but
incomplete: whenever it reports a reason, *no* assignment may satisfy the
condition. The test brute-forces every row over a tiny domain — small
enough to enumerate exhaustively, large enough to exercise the equality
chains, interval bounds, and the transitive ordering closure
(``a < b and b < c`` implying ``a < c``).
"""

from __future__ import annotations

from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Relation, evaluate, parse
from repro.algebra.parser import parse_condition
from repro.analysis.satisfiability import (
    tautological_conjuncts,
    unsatisfiable_reason,
)

ATTRS = ("a", "b", "c")
DOMAIN = range(4)
OPS = ("=", "!=", "<", "<=", ">", ">=")

_term = st.one_of(st.sampled_from(ATTRS), st.integers(0, 3))
_comparison = st.tuples(_term, st.sampled_from(OPS), _term)


def _render(term) -> str:
    return term if isinstance(term, str) else str(term)


conditions = st.lists(_comparison, min_size=1, max_size=5).map(
    lambda cs: " and ".join(
        f"{_render(l)} {op} {_render(r)}" for l, op, r in cs
    )
)


def brute_force_satisfiable(text: str) -> bool:
    """Whether any row over the tiny domain satisfies the condition."""
    expression = parse(f"sigma[{text}](R)")
    for row in product(DOMAIN, repeat=len(ATTRS)):
        if evaluate(expression, {"R": Relation(ATTRS, [row])}).rows:
            return True
    return False


@given(conditions)
@settings(max_examples=150, deadline=None)
def test_unsatisfiable_verdicts_are_sound(text):
    reason = unsatisfiable_reason(parse_condition(text))
    if reason is not None:
        assert not brute_force_satisfiable(text), (
            f"claimed unsatisfiable ({reason!r}) but a row satisfies: {text}"
        )


@given(conditions)
@settings(max_examples=150, deadline=None)
def test_tautological_conjuncts_filter_nothing(text):
    # Every conjunct reported tautological must hold on every row.
    for conjunct in tautological_conjuncts(parse_condition(text)):
        assert not brute_force_satisfiable(f"not ({conjunct})") or all(
            evaluate(
                parse(f"sigma[{conjunct}](R)"), {"R": Relation(ATTRS, [row])}
            ).rows
            for row in product(DOMAIN, repeat=len(ATTRS))
        )


class TestTransitiveOrderingRegression:
    """Pinned examples for the ordering-chain propagation."""

    def test_strict_cycle_through_three_attributes(self):
        assert unsatisfiable_reason(
            parse_condition("a < b and b < c and c < a")
        ) is not None

    def test_one_strict_edge_suffices(self):
        assert unsatisfiable_reason(
            parse_condition("a < b and b <= c and c <= a")
        ) is not None

    def test_non_strict_cycle_is_satisfiable(self):
        assert unsatisfiable_reason(
            parse_condition("a <= b and b <= c and c <= a")
        ) is None
        assert brute_force_satisfiable("a <= b and b <= c and c <= a")

    def test_constant_bound_travels_down_the_chain(self):
        assert unsatisfiable_reason(
            parse_condition("a > 5 and a < b and b < c and c < 3")
        ) is not None

    def test_constant_bound_travels_up_the_chain(self):
        assert unsatisfiable_reason(
            parse_condition("a < b and b < c and a > 5 and c < 3")
        ) is not None

    def test_equality_classes_merge_chain_nodes(self):
        # b = c makes a < b and c < a a strict two-node cycle.
        assert unsatisfiable_reason(
            parse_condition("b = c and a < b and c < a")
        ) is not None

    def test_open_chain_stays_satisfiable(self):
        text = "a < b and b < c"
        assert unsatisfiable_reason(parse_condition(text)) is None
        assert brute_force_satisfiable(text)
