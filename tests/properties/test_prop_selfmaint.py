"""Property-based consistency: selfmaint verdicts vs. dataflow read sets.

Two modules answer "can this view set maintain itself without touching
the sources?" from different angles —
:func:`repro.core.selfmaint.self_maintainable_without_complement` as a
per-view boolean, :func:`repro.analysis.dataflow.views_only_read_sets`
as per-update-shape read sets. Hypothesis samples view sets from a small
definition pool and checks the implication that ties them together: a
self-maintainable-everywhere view set must have empty read sets
everywhere (selfmaint-yes ⇒ dataflow-read-set-empty). The converse is
not asserted — the dataflow analysis may simplify more aggressively.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Catalog, View, parse
from repro.analysis.dataflow import KINDS, views_only_read_sets
from repro.core.selfmaint import (
    is_select_only_update_independent,
    self_maintainable_without_complement,
)

DEFINITIONS = [
    "R",
    "S",
    "sigma[a = 1](R)",
    "sigma[a = 0 and b = 1](R)",
    "sigma[b = c](S)",
    "pi[a](R)",
    "pi[b](S)",
    "R join S",
    "pi[a, b](R join S)",
]


def catalog():
    cat = Catalog()
    cat.relation("R", ("a", "b"))
    cat.relation("S", ("b", "c"))
    return cat


view_sets = st.lists(
    st.sampled_from(DEFINITIONS), min_size=1, max_size=3, unique=True
).map(
    lambda defs: [
        View(f"V{i}", parse(text)) for i, text in enumerate(defs)
    ]
)


@settings(max_examples=60, deadline=None)
@given(views=view_sets)
def test_selfmaint_yes_implies_empty_read_sets(views):
    cat = catalog()
    report = views_only_read_sets(cat, views)
    for relation in cat.relation_names():
        for kind in KINDS:
            verdicts = self_maintainable_without_complement(
                cat,
                views,
                [relation],
                insert_only=kind == "insert",
                delete_only=kind == "delete",
            )
            if all(verdicts.values()):
                assert report.reads_for(relation, kind) == (), (
                    relation,
                    kind,
                    verdicts,
                )


@settings(max_examples=60, deadline=None)
@given(definition=st.sampled_from(DEFINITIONS))
def test_select_only_views_have_empty_read_sets(definition):
    cat = catalog()
    view = View("W", parse(definition))
    if is_select_only_update_independent(view, cat):
        assert views_only_read_sets(cat, [view]).update_independent
