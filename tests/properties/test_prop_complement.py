"""Property-based tests: complements reconstruct and the mapping is 1-1.

The central invariants of the paper, over randomized states:

* Equation (4) reconstructs every base relation exactly (Theorem 2.2);
* distinct states have distinct warehouse images (Proposition 2.1);
* query translation commutes (Theorem 3.1);
* incremental refresh equals the recomputed mapping (Theorem 4.1).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Catalog,
    Relation,
    Update,
    View,
    complement_prop22,
    complement_thm22,
    evaluate,
    parse,
)
from repro.core.independence import (
    reconstructed_state,
    verify_complement,
    warehouse_state,
)
from repro.core.maintenance import refresh_state
from repro.core.translation import answer_query

from .strategies import keyed_relation, relation, state_RST


def example21_specs():
    catalog = Catalog()
    catalog.relation("R", ("X", "Y"))
    catalog.relation("S", ("Y", "Z"))
    catalog.relation("T", ("Z",))
    single = complement_prop22(catalog, [View("V1", parse("R join S join T"))])
    multi = complement_prop22(
        catalog, [View("V1", parse("R join S join T")), View("V2", parse("S"))]
    )
    return single, multi


SINGLE, MULTI = example21_specs()


@given(state_RST())
@settings(max_examples=80, deadline=None)
def test_prop22_reconstructs(state):
    ok, problems = verify_complement(SINGLE, state)
    assert ok, problems


@given(state_RST())
@settings(max_examples=80, deadline=None)
def test_multiview_reconstructs(state):
    ok, problems = verify_complement(MULTI, state)
    assert ok, problems


@given(state_RST(), state_RST())
@settings(max_examples=60, deadline=None)
def test_mapping_injective_pairwise(first, second):
    def same_state(a, b):
        return all(a[k] == b[k] for k in ("R", "S", "T"))

    if same_state(first, second):
        return
    assert warehouse_state(SINGLE, first) != warehouse_state(SINGLE, second)


def keyed_catalog_spec():
    catalog = Catalog()
    catalog.relation("R", ("a", "b"), key=("a",))
    catalog.relation("S", ("b", "c"))
    spec = complement_thm22(
        catalog,
        [View("VA", parse("pi[a, b](R)")), View("VB", parse("R join S"))],
    )
    return spec


KEYED = keyed_catalog_spec()


@given(keyed_relation(("a", "b"), (0,)), relation(("b", "c")))
@settings(max_examples=80, deadline=None)
def test_thm22_reconstructs_with_keys(r, s):
    state = {"R": r, "S": s}
    ok, problems = verify_complement(KEYED, state)
    assert ok, problems


QUERY = parse("pi[X](R) union pi[X](R join S join T)")
QUERY2 = parse("pi[Y](S) minus pi[Y](R)")


@given(state_RST())
@settings(max_examples=60, deadline=None)
def test_query_translation_commutes(state):
    warehouse = warehouse_state(MULTI, state)
    for query in (QUERY, QUERY2):
        assert answer_query(MULTI, warehouse, query) == evaluate(query, state)


@given(
    state_RST(),
    st.sampled_from(["R", "S", "T"]),
    st.frozensets(
        st.tuples(st.integers(0, 2), st.integers(0, 2)), min_size=0, max_size=3
    ),
    st.booleans(),
)
@settings(max_examples=80, deadline=None)
def test_incremental_refresh_commutes(state, target, rows, is_insert):
    attrs = state[target].attributes
    shaped = {tuple(row[: len(attrs)]) for row in rows}
    update = (
        Update.insert(target, attrs, shaped)
        if is_insert
        else Update.delete(target, attrs, shaped)
    )
    warehouse = warehouse_state(MULTI, state)
    new_warehouse, _ = refresh_state(MULTI, warehouse, update)
    new_state = dict(state)
    delta = update.delta_for(target)
    new_state[target] = delta.apply_to(state[target])
    assert new_warehouse == warehouse_state(MULTI, new_state)


@given(state_RST())
@settings(max_examples=40, deadline=None)
def test_roundtrip_state_equality(state):
    rebuilt = reconstructed_state(MULTI, warehouse_state(MULTI, state))
    for name in ("R", "S", "T"):
        assert rebuilt[name] == state[name]
