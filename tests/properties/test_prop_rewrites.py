"""Property-based tests: every rewriting pass preserves semantics.

Hypothesis builds random well-typed expression trees (including difference
and rename, beyond the CQ fragment) plus random states, and checks that

* ``simplify`` preserves evaluation,
* ``optimize`` preserves evaluation,
* ``parse(str(expr)) == expr`` (printer/parser round-trip) for trees whose
  constants are printable.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Relation, evaluate, parse
from repro.algebra.conditions import Comparison, attr, const
from repro.algebra.expressions import (
    Difference,
    Join,
    Project,
    RelationRef,
    Rename,
    Select,
    Union,
)
from repro.algebra.optimize import optimize
from repro.algebra.simplify import simplify

from .strategies import relation

SCOPE = {"R": ("a", "b"), "S": ("b", "c"), "T": ("a", "b")}
FRESH = "xyz"


def expressions(depth: int):
    leaves = st.sampled_from(
        [RelationRef("R"), RelationRef("S"), RelationRef("T")]
    )
    if depth == 0:
        return leaves
    sub = expressions(depth - 1)

    def combine(args):
        kind, left, right, value, pick = args
        try:
            left_attrs = frozenset(left.attributes(SCOPE_EXT))
            right_attrs = frozenset(right.attributes(SCOPE_EXT))
        except Exception:
            return left
        if kind == "join":
            return Join(left, right)
        if kind == "union" and left_attrs == right_attrs:
            return Union(left, right)
        if kind == "difference" and left_attrs == right_attrs:
            return Difference(left, right)
        if kind == "select":
            chosen = sorted(left_attrs)[pick % len(left_attrs)]
            op = ("=", "!=", "<", ">=")[value % 4]
            return Select(left, Comparison(attr(chosen), op, const(value)))
        if kind == "project":
            keep = sorted(left_attrs)[: 1 + pick % len(left_attrs)]
            return Project(left, tuple(keep))
        if kind == "rename":
            chosen = sorted(left_attrs)[pick % len(left_attrs)]
            target = FRESH[pick % len(FRESH)]
            if target in left_attrs:
                return left
            return Rename(left, {chosen: target})
        return left

    return st.tuples(
        st.sampled_from(
            ["join", "union", "difference", "select", "project", "rename"]
        ),
        sub,
        sub,
        st.integers(0, 3),
        st.integers(0, 5),
    ).map(combine)


# Renames can introduce x, y, z downstream; widen the scope for typing.
SCOPE_EXT = SCOPE


def states():
    return st.fixed_dictionaries(
        {
            "R": relation(("a", "b")),
            "S": relation(("b", "c")),
            "T": relation(("a", "b")),
        }
    )


def _typed(expr) -> bool:
    try:
        expr.attributes(SCOPE)
        return True
    except Exception:
        return False


@given(expressions(3), states())
@settings(max_examples=150, deadline=None)
def test_simplify_preserves_semantics(expr, state):
    if not _typed(expr):
        return
    simplified = simplify(expr, SCOPE)
    assert evaluate(expr, state) == evaluate(simplified, state), str(expr)


@given(expressions(3), states())
@settings(max_examples=150, deadline=None)
def test_optimize_preserves_semantics(expr, state):
    if not _typed(expr):
        return
    optimized = optimize(expr, SCOPE)
    assert evaluate(expr, state) == evaluate(optimized, state), str(expr)


@given(expressions(3))
@settings(max_examples=150, deadline=None)
def test_parser_roundtrip(expr):
    assert parse(str(expr)) == expr, str(expr)


@given(expressions(2), states())
@settings(max_examples=80, deadline=None)
def test_simplify_idempotent(expr, state):
    if not _typed(expr):
        return
    once = simplify(expr, SCOPE)
    twice = simplify(once, SCOPE)
    assert once == twice, str(expr)
