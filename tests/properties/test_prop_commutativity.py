"""Property tests: the prover's commutativity verdicts are semantic truths.

:func:`~repro.analysis.concurrency.decide_update_commutativity` compares
canonical ``s ↦ (s − D) ∪ I`` normal forms. The properties pin the verdict
to the ground truth it claims: a PROVED pair's two application orders end
in the same state from *every* start state; a REFUTED pair's witness
replays to genuinely divergent states (and the recorded ends match the
replay). The decision is also symmetric in its arguments, and updates over
disjoint relations always commute — the async integrator's per-source
soundness precondition.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.concurrency import (
    decide_update_commutativity,
    replay_interleaving,
)

ATTRS = {"R": ("a", "b"), "S": ("c",)}

VALUES = st.integers(min_value=0, max_value=2)


def rows(attrs, max_rows=3):
    return st.frozensets(
        st.tuples(*[VALUES for _ in attrs]), max_size=max_rows
    ).map(lambda rs: tuple(sorted(rs)))


def update_over(names):
    """Per-relation (inserts, deletes) pairs for a fixed relation set."""
    return st.fixed_dictionaries(
        {name: st.tuples(rows(ATTRS[name]), rows(ATTRS[name])) for name in names}
    )


def both_updates():
    subsets = st.sets(st.sampled_from(sorted(ATTRS)), max_size=2).map(sorted)
    return st.tuples(subsets, subsets).flatmap(
        lambda pair: st.tuples(update_over(pair[0]), update_over(pair[1]))
    )


def apply_update(state, update):
    """Ground truth: apply each relation's (inserts, deletes) to a state."""
    out = dict(state)
    for name, (inserts, deletes) in update.items():
        current = out.get(name, frozenset())
        out[name] = (current - frozenset(deletes)) | frozenset(inserts)
    return out


def start_states(first, second):
    """Start states over the touched relations, rows drawn from the updates."""
    names = sorted(set(first) | set(second))
    pools = {
        name: sorted(
            set(first.get(name, ((), ()))[0])
            | set(first.get(name, ((), ()))[1])
            | set(second.get(name, ((), ()))[0])
            | set(second.get(name, ((), ()))[1])
        )
        for name in names
    }
    return st.fixed_dictionaries(
        {
            name: st.frozensets(st.sampled_from(pool), max_size=len(pool))
            if pool
            else st.just(frozenset())
            for name, pool in pools.items()
        }
    )


@settings(max_examples=200, deadline=None)
@given(both_updates().flatmap(
    lambda pair: st.tuples(
        st.just(pair[0]), st.just(pair[1]), start_states(pair[0], pair[1])
    )
))
def test_proved_pairs_are_order_free_from_every_state(case):
    first, second, state = case
    witness = decide_update_commutativity(first, second, ATTRS)
    one = apply_update(apply_update(state, first), second)
    other = apply_update(apply_update(state, second), first)
    if witness is None:
        # PROVED must mean semantically order-independent — from any state
        # assembled out of the rows the updates themselves mention.
        assert one == other
    else:
        # REFUTED must come with a replayable divergence.
        end12, end21 = replay_interleaving(witness)
        assert end12 != end21
        assert end12 == witness.first_then_second
        assert end21 == witness.second_then_first


@settings(max_examples=100, deadline=None)
@given(both_updates())
def test_decision_is_symmetric(pair):
    first, second = pair
    forward = decide_update_commutativity(first, second, ATTRS)
    backward = decide_update_commutativity(second, first, ATTRS)
    assert (forward is None) == (backward is None)


@settings(max_examples=100, deadline=None)
@given(
    st.tuples(rows(ATTRS["R"]), rows(ATTRS["R"])),
    st.tuples(rows(ATTRS["S"]), rows(ATTRS["S"])),
)
def test_disjoint_relations_always_commute(r_update, s_update):
    assert (
        decide_update_commutativity({"R": r_update}, {"S": s_update}, ATTRS)
        is None
    )


@settings(max_examples=100, deadline=None)
@given(both_updates())
def test_witness_start_state_is_minimal(pair):
    first, second = pair
    witness = decide_update_commutativity(first, second, ATTRS)
    if witness is not None:
        assert len(witness.start) <= 1
        assert witness.relation in set(first) | set(second)
