"""Shared fixtures: the paper's running examples as reusable objects."""

from __future__ import annotations

import pytest

from repro import Catalog, Database, Relation, View, parse


@pytest.fixture
def figure1_catalog() -> Catalog:
    """Figure 1: Sale(item, clerk), Emp(clerk, age) with clerk a key of Emp."""
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    return catalog


@pytest.fixture
def figure1_catalog_ri(figure1_catalog: Catalog) -> Catalog:
    """Figure 1 plus the Example 2.4 referential integrity constraint."""
    figure1_catalog.inclusion("Sale", ("clerk",), "Emp")
    return figure1_catalog


@pytest.fixture
def figure1_database(figure1_catalog: Catalog) -> Database:
    """The exact contents shown in Example 1.1."""
    db = Database(figure1_catalog)
    db.load("Sale", [("TV set", "Mary"), ("VCR", "Mary"), ("PC", "John")])
    db.load("Emp", [("Mary", 23), ("John", 25), ("Paula", 32)])
    return db


@pytest.fixture
def sold_view() -> View:
    """The warehouse view ``Sold = Sale join Emp``."""
    return View("Sold", parse("Sale join Emp"))


@pytest.fixture
def example21_catalog() -> Catalog:
    """Example 2.1: R(X, Y), S(Y, Z), T(Z) — no constraints."""
    catalog = Catalog()
    catalog.relation("R", ("X", "Y"))
    catalog.relation("S", ("Y", "Z"))
    catalog.relation("T", ("Z",))
    return catalog


@pytest.fixture
def example23_catalog() -> Catalog:
    """Example 2.3: R1(A,B,C), R2(A,C,D), R3(A,B); A keys; two INDs."""
    catalog = Catalog()
    catalog.relation("R1", ("A", "B", "C"), key=("A",))
    catalog.relation("R2", ("A", "C", "D"), key=("A",))
    catalog.relation("R3", ("A", "B"), key=("A",))
    catalog.inclusion("R3", ("A", "B"), "R1")
    catalog.inclusion("R2", ("A", "C"), "R1")
    return catalog


@pytest.fixture
def example23_views():
    """Example 2.3's views V1..V4."""
    return [
        View("V1", parse("R1 join R2")),
        View("V2", parse("R3")),
        View("V3", parse("pi[A, B](R1)")),
        View("V4", parse("pi[A, C](R1)")),
    ]


def make_relation(attrs, rows) -> Relation:
    """Terser Relation construction for test bodies."""
    return Relation(tuple(attrs), rows)
