"""Unit tests for :mod:`repro.schema.constraints`."""

from __future__ import annotations

import pytest

from repro import InclusionDependency, KeyConstraint, SchemaError


class TestKeyConstraint:
    def test_basic(self):
        key = KeyConstraint("Emp", ("clerk",))
        assert key.relation == "Emp"
        assert key.attributes == ("clerk",)
        assert key.attribute_set == frozenset({"clerk"})

    def test_equality_ignores_attribute_order(self):
        assert KeyConstraint("R", ("a", "b")) == KeyConstraint("R", ("b", "a"))

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            KeyConstraint("R", ())

    def test_duplicates_rejected(self):
        with pytest.raises(SchemaError):
            KeyConstraint("R", ("a", "a"))

    def test_str(self):
        assert str(KeyConstraint("Emp", ("clerk",))) == "key(Emp: clerk)"


class TestInclusionDependency:
    def test_identity_default(self):
        ind = InclusionDependency("Sale", ("clerk",), "Emp")
        assert ind.is_identity()
        assert ind.lhs_attributes == ind.rhs_attributes == ("clerk",)
        assert str(ind) == "Sale[clerk] <= Emp[clerk]"

    def test_renamed(self):
        ind = InclusionDependency("Orders", ("cust",), "Customer", ("custkey",))
        assert not ind.is_identity()
        assert ind.renaming() == {"cust": "custkey"}
        assert ind.inverse_renaming() == {"custkey": "cust"}

    def test_multi_attribute_positional_correspondence(self):
        ind = InclusionDependency("L", ("x", "y"), "R", ("a", "b"))
        assert ind.renaming() == {"x": "a", "y": "b"}

    def test_length_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            InclusionDependency("L", ("x", "y"), "R", ("a",))

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            InclusionDependency("L", (), "R", ())

    def test_duplicates_per_side_rejected(self):
        with pytest.raises(SchemaError):
            InclusionDependency("L", ("x", "x"), "R", ("a", "b"))

    def test_equality(self):
        first = InclusionDependency("L", ("x",), "R", ("a",))
        second = InclusionDependency("L", ("x",), "R", ("a",))
        assert first == second
        assert hash(first) == hash(second)
        assert first != InclusionDependency("L", ("x",), "R", ("b",))
