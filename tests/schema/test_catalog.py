"""Unit tests for :mod:`repro.schema.catalog`."""

from __future__ import annotations

import pytest

from repro import Catalog, InclusionDependency, RelationSchema, SchemaError


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    return catalog


class TestRelations:
    def test_lookup(self, catalog):
        assert catalog["Emp"].key == ("clerk",)
        assert "Sale" in catalog
        assert "Nope" not in catalog
        assert catalog.get("Nope") is None

    def test_duplicate_rejected(self, catalog):
        with pytest.raises(SchemaError):
            catalog.relation("Sale", ("x",))

    def test_unknown_lookup_raises(self, catalog):
        with pytest.raises(SchemaError):
            catalog["Nope"]

    def test_names_in_declaration_order(self, catalog):
        assert catalog.relation_names() == ("Sale", "Emp")

    def test_attributes_and_key(self, catalog):
        assert catalog.attributes("Sale") == frozenset({"item", "clerk"})
        assert catalog.key("Emp") == ("clerk",)
        assert catalog.key("Sale") is None

    def test_key_constraints_view(self, catalog):
        keys = catalog.key_constraints()
        assert len(keys) == 1
        assert keys[0].relation == "Emp"


class TestInclusions:
    def test_add_and_query(self, catalog):
        ind = catalog.inclusion("Sale", ("clerk",), "Emp")
        assert catalog.inclusions() == (ind,)
        assert catalog.inclusions_into("Emp") == (ind,)
        assert catalog.inclusions_from("Sale") == (ind,)
        assert catalog.inclusions_into("Sale") == ()

    def test_duplicate_ind_is_idempotent(self, catalog):
        catalog.inclusion("Sale", ("clerk",), "Emp")
        catalog.inclusion("Sale", ("clerk",), "Emp")
        assert len(catalog.inclusions()) == 1

    def test_unknown_attribute_rejected(self, catalog):
        with pytest.raises(SchemaError):
            catalog.inclusion("Sale", ("ghost",), "Emp", ("clerk",))

    def test_self_reference_rejected(self, catalog):
        with pytest.raises(SchemaError):
            catalog.inclusion("Emp", ("clerk",), "Emp", ("clerk",))

    def test_foreign_key_helper(self, catalog):
        ind = catalog.foreign_key("Sale", ("clerk",), "Emp")
        assert ind.rhs_attributes == ("clerk",)

    def test_foreign_key_needs_target_key(self, catalog):
        with pytest.raises(SchemaError):
            catalog.foreign_key("Emp", ("clerk",), "Sale")


class TestAcyclicity:
    def test_cycle_rejected_and_rolled_back(self):
        catalog = Catalog()
        catalog.relation("A", ("x",), key=("x",))
        catalog.relation("B", ("x",), key=("x",))
        catalog.inclusion("A", ("x",), "B")
        with pytest.raises(SchemaError):
            catalog.inclusion("B", ("x",), "A")
        # The failed IND must not linger.
        assert len(catalog.inclusions()) == 1

    def test_long_cycle_rejected(self):
        catalog = Catalog()
        for name in ("A", "B", "C"):
            catalog.relation(name, ("x",), key=("x",))
        catalog.inclusion("A", ("x",), "B")
        catalog.inclusion("B", ("x",), "C")
        with pytest.raises(SchemaError):
            catalog.inclusion("C", ("x",), "A")

    def test_inclusion_order_is_topological(self):
        catalog = Catalog()
        for name in ("A", "B", "C", "D"):
            catalog.relation(name, ("x",), key=("x",))
        catalog.inclusion("A", ("x",), "B")
        catalog.inclusion("B", ("x",), "C")
        catalog.inclusion("A", ("x",), "D")
        order = catalog.inclusion_order()
        assert set(order) == {"A", "B", "C", "D"}
        assert order.index("A") < order.index("B") < order.index("C")
        assert order.index("A") < order.index("D")

    def test_order_without_inds_contains_all(self, catalog):
        assert set(catalog.inclusion_order()) == {"Sale", "Emp"}


class TestDescribe:
    def test_describe_lists_everything(self, catalog):
        catalog.inclusion("Sale", ("clerk",), "Emp")
        text = catalog.describe()
        assert "Sale(item, clerk)" in text
        assert "Emp(clerk*, age)" in text
        assert "Sale[clerk] <= Emp[clerk]" in text
