"""Unit tests for :mod:`repro.schema.schema`."""

from __future__ import annotations

import pytest

from repro import RelationSchema, SchemaError


class TestConstruction:
    def test_basic(self):
        schema = RelationSchema("Emp", ("clerk", "age"))
        assert schema.name == "Emp"
        assert schema.attributes == ("clerk", "age")
        assert schema.attribute_set == frozenset({"clerk", "age"})
        assert schema.key is None
        assert not schema.has_key()

    def test_with_key(self):
        schema = RelationSchema("Emp", ("clerk", "age"), key=("clerk",))
        assert schema.key == ("clerk",)
        assert schema.key_set == frozenset({"clerk"})
        assert schema.has_key()

    def test_key_canonical_order_follows_attributes(self):
        schema = RelationSchema("L", ("a", "b", "c"), key=("c", "a"))
        assert schema.key == ("a", "c")

    def test_empty_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ())

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ("a", "a"))

    def test_key_outside_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ("a", "b"), key=("z",))

    def test_empty_key_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ("a",), key=())

    def test_duplicate_key_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ("a", "b"), key=("a", "a"))

    def test_invalid_names_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("1R", ("a",))
        with pytest.raises(SchemaError):
            RelationSchema("R", ("a-b",))
        with pytest.raises(SchemaError):
            RelationSchema("", ("a",))


class TestEquality:
    def test_equal(self):
        first = RelationSchema("R", ("a", "b"), key=("a",))
        second = RelationSchema("R", ("a", "b"), key=("a",))
        assert first == second
        assert hash(first) == hash(second)

    def test_key_matters(self):
        assert RelationSchema("R", ("a", "b")) != RelationSchema(
            "R", ("a", "b"), key=("a",)
        )

    def test_attribute_order_matters_for_equality(self):
        assert RelationSchema("R", ("a", "b")) != RelationSchema("R", ("b", "a"))


class TestDisplay:
    def test_str_marks_key_attributes(self):
        schema = RelationSchema("Emp", ("clerk", "age"), key=("clerk",))
        assert str(schema) == "Emp(clerk*, age)"

    def test_repr_roundtrip_info(self):
        schema = RelationSchema("Emp", ("clerk", "age"), key=("clerk",))
        assert "Emp" in repr(schema)
        assert "key" in repr(schema)
