"""Edge cases across the core pipeline."""

from __future__ import annotations

import pytest

from repro import (
    Catalog,
    Database,
    Relation,
    Update,
    View,
    Warehouse,
    complement_prop22,
    complement_thm22,
    parse,
)
from repro.core.independence import verify_complement, warehouse_state


class TestDegenerateWarehouses:
    def test_empty_database(self, figure1_catalog, sold_view):
        wh = Warehouse.specify(figure1_catalog, [sold_view])
        wh.initialize(Database(figure1_catalog))
        assert wh.storage_rows() == 0
        assert wh.answer("Sale").rows == frozenset()
        wh.insert("Emp", [("Mary", 23)])
        assert wh.reconstruct("Emp").to_set() == {("Mary", 23)}

    def test_relation_not_covered_by_any_view(self):
        catalog = Catalog()
        catalog.relation("A", ("x",))
        catalog.relation("B", ("y",))
        spec = complement_prop22(catalog, [View("VA", parse("A"))])
        # B appears in no view: its complement is B itself.
        assert str(spec.inverses["B"]) == "C_B"
        state = {"A": Relation(("x",), [(1,)]), "B": Relation(("y",), [(2,)])}
        ok, problems = verify_complement(spec, state)
        assert ok, problems

    def test_no_views_at_all(self):
        catalog = Catalog()
        catalog.relation("A", ("x",))
        spec = complement_thm22(catalog, [])
        # Degenerates to the trivial complement.
        assert str(spec.inverses["A"]) == "C_A"
        state = {"A": Relation(("x",), [(1,), (2,)])}
        ok, problems = verify_complement(spec, state)
        assert ok, problems

    def test_single_relation_single_copy_view(self):
        catalog = Catalog()
        catalog.relation("A", ("x", "y"))
        spec = complement_thm22(catalog, [View("Copy", parse("A"))])
        assert spec.complements["A"].provably_empty
        assert str(spec.inverses["A"]) == "Copy"

    def test_thm22_without_constraints_equals_prop22(self, example21_catalog):
        views = [View("V1", parse("R join S join T"))]
        thm = complement_thm22(
            example21_catalog, views, prune_empty=False
        )
        prop = complement_prop22(example21_catalog, views)
        for relation in ("R", "S", "T"):
            assert str(thm.complements[relation].definition) == str(
                prop.complements[relation].definition
            )
            assert str(thm.inverses[relation]) == str(prop.inverses[relation])


class TestCompositeKeys:
    def test_two_attribute_key_cover(self):
        catalog = Catalog()
        catalog.relation("L", ("ok", "ln", "p", "q"), key=("ok", "ln"))
        views = [
            View("VP", parse("pi[ok, ln, p](L)")),
            View("VQ", parse("pi[ok, ln, q](L)")),
        ]
        spec = complement_thm22(catalog, views)
        # The composite-key join VP |x| VQ is lossless: complement empty.
        assert spec.complements["L"].provably_empty
        state = {
            "L": Relation(("ok", "ln", "p", "q"), [(1, 1, "a", "b"), (1, 2, "c", "d")])
        }
        ok, problems = verify_complement(spec, state)
        assert ok, problems

    def test_view_retaining_half_the_key_is_useless(self):
        catalog = Catalog()
        catalog.relation("L", ("ok", "ln", "p"), key=("ok", "ln"))
        views = [View("VP", parse("pi[ok, p](L)"))]  # drops ln: no key
        spec = complement_thm22(catalog, views)
        assert not spec.complements["L"].provably_empty
        state = {"L": Relation(("ok", "ln", "p"), [(1, 1, "a"), (1, 2, "a")])}
        ok, problems = verify_complement(spec, state)
        assert ok, problems


class TestUpdateEdges:
    def test_empty_update_is_noop(self, figure1_catalog, figure1_database, sold_view):
        wh = Warehouse.specify(figure1_catalog, [sold_view])
        wh.initialize(figure1_database)
        before = dict(wh.state)
        applied = wh.apply(Update([]))
        assert applied == {}
        assert wh.state == before

    def test_update_with_insert_equal_delete(self, figure1_catalog, figure1_database, sold_view):
        wh = Warehouse.specify(figure1_catalog, [sold_view])
        wh.initialize(figure1_database)
        before = dict(wh.state)
        update = Update.modify(
            "Sale", ("item", "clerk"), [("TV set", "Mary")], [("TV set", "Mary")]
        )
        figure1_database.apply(update)
        wh.apply(update)
        assert wh.state == before

    def test_reinitialization_resets(self, figure1_catalog, figure1_database, sold_view):
        wh = Warehouse.specify(figure1_catalog, [sold_view])
        wh.initialize(figure1_database)
        wh.insert("Emp", [("Zoe", 40)])
        # Re-extract from the (unchanged) sources: the Zoe row disappears.
        wh.initialize(figure1_database)
        assert wh.state == warehouse_state(wh.spec, figure1_database.state())

    def test_duplicate_inserts_in_one_update(self, figure1_catalog, figure1_database, sold_view):
        wh = Warehouse.specify(figure1_catalog, [sold_view])
        wh.initialize(figure1_database)
        update = Update.insert(
            "Sale",
            ("item", "clerk"),
            [("Radio", "Mary"), ("Radio", "Mary")],  # duplicate rows
        )
        figure1_database.apply(update)
        wh.apply(update)
        assert wh.state == warehouse_state(wh.spec, figure1_database.state())


class TestConditionViews:
    def test_selection_with_disjunction(self):
        catalog = Catalog()
        catalog.relation("R", ("a", "b"))
        views = [View("V", parse("sigma[a = 1 or a = 2](R)"))]
        spec = complement_thm22(catalog, views)
        state = {"R": Relation(("a", "b"), [(1, 1), (2, 2), (3, 3)])}
        ok, problems = verify_complement(spec, state)
        assert ok, problems

    def test_selection_with_negation(self):
        catalog = Catalog()
        catalog.relation("R", ("a", "b"))
        views = [View("V", parse("sigma[not (a = 1)](R)"))]
        spec = complement_thm22(catalog, views)
        state = {"R": Relation(("a", "b"), [(1, 1), (2, 2)])}
        ok, problems = verify_complement(spec, state)
        assert ok, problems

    def test_attribute_to_attribute_condition(self):
        catalog = Catalog()
        catalog.relation("R", ("a", "b"))
        views = [View("V", parse("sigma[a = b](R)"))]
        spec = complement_thm22(catalog, views)
        state = {"R": Relation(("a", "b"), [(1, 1), (1, 2)])}
        ok, problems = verify_complement(spec, state)
        assert ok, problems
        assert str(spec.complements["R"].definition) == "R minus V"
