"""Unit tests for :mod:`repro.core.minimality`."""

from __future__ import annotations

import pytest

from repro import (
    Catalog,
    Relation,
    View,
    complement_prop22,
    complement_thm22,
    parse,
    rel,
)
from repro.core.minimality import (
    Comparison,
    compare_view_sets,
    is_minimal_certificate,
    smaller_on_states,
    total_rows,
)

SCOPE = {"R": ("a", "b"), "S": ("b", "c")}


def states():
    return [
        {
            "R": Relation(("a", "b"), [(1, 2), (3, 4)]),
            "S": Relation(("b", "c"), [(2, 5)]),
        },
        {
            "R": Relation(("a", "b"), []),
            "S": Relation(("b", "c"), [(9, 9)]),
        },
        {
            "R": Relation(("a", "b"), [(0, 0)]),
            "S": Relation(("b", "c"), [(0, 0), (1, 1)]),
        },
    ]


class TestOrdering:
    def test_exact_containment_used_when_available(self):
        # pi_a(R join S) <= pi_a(R) holds exactly; no states needed.
        assert smaller_on_states(
            [parse("pi[a](R join S)")], [parse("pi[a](R)")], [], scope=SCOPE
        )

    def test_exact_non_containment(self):
        assert not smaller_on_states(
            [parse("pi[a](R)")], [parse("pi[a](R join S)")], [], scope=SCOPE
        )

    def test_state_fallback_for_difference(self):
        # Difference is outside the CQ fragment: states decide.
        assert smaller_on_states(
            [parse("R minus R")], [parse("R")], states(), scope=SCOPE
        )

    def test_matching_finds_permutation(self):
        candidates = [parse("pi[a](R)"), parse("pi[b](S)")]
        references = [parse("pi[b](S)"), parse("pi[a](R)")]
        assert smaller_on_states(candidates, references, states(), scope=SCOPE)

    def test_size_mismatch(self):
        assert not smaller_on_states([parse("R")], [], states(), scope=SCOPE)

    def test_comparison_properties(self):
        comparison = Comparison(le=True, ge=False)
        assert comparison.strictly_smaller
        assert not comparison.equivalent
        assert Comparison(True, True).equivalent
        assert Comparison(False, False).incomparable

    def test_compare_view_sets(self):
        result = compare_view_sets(
            [parse("sigma[a = 1](R)")], [parse("R")], states(), scope=SCOPE
        )
        assert result.strictly_smaller


class TestCertificates:
    def test_sj_views_no_constraints(self):
        catalog = Catalog()
        catalog.relation("R", ("a", "b"))
        catalog.relation("S", ("b", "c"))
        spec = complement_prop22(catalog, [View("V", parse("R join S"))])
        certificate = is_minimal_certificate(spec)
        assert certificate.certified and certificate.theorem == "Theorem 2.1"

    def test_thm22_qualified_minimality(self):
        catalog = Catalog()
        catalog.relation("R", ("a", "b"), key=("a",))
        catalog.relation("S", ("b", "c"))
        spec = complement_thm22(catalog, [View("V", parse("R join S"))])
        certificate = is_minimal_certificate(spec)
        assert certificate.certified and certificate.theorem == "Theorem 2.2"

    def test_psj_prop22_not_certified(self):
        catalog = Catalog()
        catalog.relation("R", ("a", "b", "c"))
        spec = complement_prop22(catalog, [View("V", parse("pi[a, b](R)"))])
        assert not is_minimal_certificate(spec).certified


class TestTotalRows:
    def test_counts(self):
        exprs = [parse("R"), parse("pi[b](S)")]
        assert total_rows(exprs, states()[0]) == 3
