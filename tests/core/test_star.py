"""E9 — Unit tests for :mod:`repro.core.star` (Section 5 star schemata)."""

from __future__ import annotations

import pytest

from repro import Catalog, Database, Relation, View, Warehouse, evaluate, parse
from repro.core.independence import verify_complement, warehouse_state
from repro.core.star import FactTable, star_specify


@pytest.fixture
def catalog() -> Catalog:
    """Two per-location order sources plus a shared customer dimension.

    The check constraints pin each source's origin attribute — the Section 5
    invariant that makes the fact table's member selections no-ops.
    """
    from repro import parse_condition

    catalog = Catalog()
    catalog.relation("Customer", ("custkey", "segment"), key=("custkey",))
    catalog.relation("OrdersN", ("loc", "okey", "custkey", "price"), key=("okey",))
    catalog.relation("OrdersS", ("loc", "okey", "custkey", "price"), key=("okey",))
    catalog.inclusion("OrdersN", ("custkey",), "Customer")
    catalog.inclusion("OrdersS", ("custkey",), "Customer")
    catalog.add_check("OrdersN", parse_condition("loc = 'N'"))
    catalog.add_check("OrdersS", parse_condition("loc = 'S'"))
    return catalog


@pytest.fixture
def fact(catalog) -> FactTable:
    return FactTable(
        "Sales",
        "loc",
        {
            "N": parse("OrdersN join Customer"),
            "S": parse("OrdersS join Customer"),
        },
    )


@pytest.fixture
def db(catalog) -> Database:
    db = Database(catalog)
    db.load("Customer", [(1, "RETAIL"), (2, "CORP"), (3, "RETAIL")])
    db.load("OrdersN", [("N", 10, 1, 100.0), ("N", 11, 2, 250.0)])
    db.load("OrdersS", [("S", 20, 1, 75.0)])
    return db


class TestFactTable:
    def test_members_wrapped_in_origin_selection(self, fact):
        member = fact.members["N"]
        assert "loc = 'N'" in str(member)

    def test_union_definition(self, fact):
        definition = fact.union_definition()
        assert definition.relation_names() == frozenset(
            {"OrdersN", "OrdersS", "Customer"}
        )

    def test_member_selections_target_fact(self, fact):
        selections = fact.member_selections()
        assert set(selections) == {"Sales__at_N", "Sales__at_S"}
        assert str(selections["Sales__at_N"]) == "sigma[loc = 'N'](Sales)"

    def test_empty_members_rejected(self):
        from repro import WarehouseError

        with pytest.raises(WarehouseError):
            FactTable("F", "loc", {})


class TestStarSpec:
    def test_stored_relations(self, catalog, fact):
        spec = star_specify(catalog, [fact], [View("CustomerDim", parse("Customer"))])
        names = set(spec.warehouse_names())
        assert "Sales" in names and "CustomerDim" in names
        # No member view leaks into storage.
        assert not any("__at_" in name for name in names)

    def test_inverses_select_on_fact(self, catalog, fact):
        spec = star_specify(catalog, [fact], [View("CustomerDim", parse("Customer"))])
        inverse = str(spec.inverses["OrdersN"])
        assert "sigma[loc = 'N'](Sales)" in inverse
        assert "OrdersN" not in inverse

    def test_complement_correct(self, catalog, fact, db):
        spec = star_specify(catalog, [fact], [View("CustomerDim", parse("Customer"))])
        ok, problems = verify_complement(spec, db.state())
        assert ok, problems

    def test_orders_complements_empty_with_fk(self, catalog, fact):
        # Every order joins its customer (FK), and the member retains all
        # attributes, so the order complements vanish.
        spec = star_specify(catalog, [fact], [View("CustomerDim", parse("Customer"))])
        assert spec.complements["OrdersN"].provably_empty
        assert spec.complements["OrdersS"].provably_empty
        assert spec.complements["Customer"].provably_empty  # CustomerDim copy


class TestStarWarehouseRuntime:
    def test_end_to_end_maintenance(self, catalog, fact, db):
        spec = star_specify(catalog, [fact], [View("CustomerDim", parse("Customer"))])
        wh = Warehouse(spec)
        wh.initialize(db)
        assert len(wh.relation("Sales")) == 3

        update = db.insert("OrdersS", [("S", 21, 3, 40.0)])
        wh.apply(update)
        assert wh.state == warehouse_state(spec, db.state())
        assert ("S", 21, 3, 40.0, "RETAIL") in wh.relation("Sales").reorder(
            ("loc", "okey", "custkey", "price", "segment")
        )

    def test_query_independence_across_sources(self, catalog, fact, db):
        spec = star_specify(catalog, [fact], [View("CustomerDim", parse("Customer"))])
        wh = Warehouse(spec)
        wh.initialize(db)
        query = parse("pi[okey, price](OrdersN) union pi[okey, price](OrdersS)")
        assert wh.answer(query) == evaluate(query, db.state())

    def test_member_recovery_by_selection(self, catalog, fact, db):
        spec = star_specify(catalog, [fact], [View("CustomerDim", parse("Customer"))])
        wh = Warehouse(spec)
        wh.initialize(db)
        north = evaluate(parse("sigma[loc = 'N'](Sales)"), wh.state)
        expected = evaluate(fact.members["N"], db.state())
        assert north == expected

    def test_deletion_propagates(self, catalog, fact, db):
        spec = star_specify(catalog, [fact], [View("CustomerDim", parse("Customer"))])
        wh = Warehouse(spec)
        wh.initialize(db)
        update = db.delete("OrdersN", [("N", 11, 2, 250.0)])
        wh.apply(update)
        assert wh.state == warehouse_state(spec, db.state())
        assert wh.reconstruct("OrdersN") == db["OrdersN"]
