"""Unit tests for :mod:`repro.core.auxviews` (the [18]-style baseline)."""

from __future__ import annotations

import random

import pytest

from repro import Catalog, Relation, View, WarehouseError, complement_thm22, parse
from repro.core.auxviews import auxiliary_views, verify_insert_maintenance
from repro.core.independence import warehouse_state


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk", "price"))
    catalog.relation("Emp", ("clerk", "age", "dept"), key=("clerk",))
    return catalog


def random_state(seed: int):
    rng = random.Random(seed)
    sale = {
        (f"item{rng.randrange(6)}", f"c{rng.randrange(4)}", rng.randrange(100))
        for _ in range(rng.randint(0, 8))
    }
    emp = {}
    for _ in range(rng.randint(0, 5)):
        clerk = f"c{rng.randrange(4)}"
        emp[clerk] = (clerk, rng.randint(20, 60), f"d{rng.randrange(2)}")
    return {
        "Sale": Relation(("item", "clerk", "price"), sale),
        "Emp": Relation(("clerk", "age", "dept"), emp.values()),
    }


class TestConstruction:
    def test_projection_keeps_needed_attributes_only(self, catalog):
        view = View("V", parse("pi[item, age](Sale join Emp)"))
        aux = auxiliary_views(catalog, view)
        # Sale needs item (output), clerk (join) — not price.
        assert str(aux.auxiliaries["Sale"]) == "pi[item, clerk](Sale)"
        # Emp needs clerk (join), age (output) — not dept.
        assert str(aux.auxiliaries["Emp"]) == "pi[clerk, age](Emp)"

    def test_local_selection_pushed(self, catalog):
        view = View("V", parse("pi[item, age](sigma[age > 30](Sale join Emp))"))
        aux = auxiliary_views(catalog, view)
        assert "sigma[age > 30]" in str(aux.auxiliaries["Emp"])
        assert "sigma" not in str(aux.auxiliaries["Sale"])

    def test_cross_relation_condition_not_pushed(self, catalog):
        view = View("V", parse("sigma[price = age](Sale join Emp)"))
        aux = auxiliary_views(catalog, view)
        # price = age spans both relations: stays out of both auxiliaries.
        assert "sigma" not in str(aux.auxiliaries["Sale"])
        assert "sigma" not in str(aux.auxiliaries["Emp"])

    def test_names(self, catalog):
        view = View("V", parse("Sale join Emp"))
        aux = auxiliary_views(catalog, view)
        assert set(aux.names()) == {"A_V_Sale", "A_V_Emp"}

    def test_unknown_relation_rejected(self, catalog):
        view = View("V", parse("Sale join Emp"))
        aux = auxiliary_views(catalog, view)
        with pytest.raises(WarehouseError):
            aux.insert_delta_expression("Ghost")


class TestInsertMaintenance:
    @pytest.mark.parametrize(
        "definition",
        [
            "Sale join Emp",
            "pi[item, age](Sale join Emp)",
            "pi[item, clerk](sigma[age > 30](Sale join Emp))",
            "pi[clerk](sigma[price >= 50 and age > 25](Sale join Emp))",
        ],
    )
    @pytest.mark.parametrize("target", ["Sale", "Emp"])
    def test_identity_on_random_states(self, catalog, definition, target):
        view = View("V", parse(definition))
        aux = auxiliary_views(catalog, view)
        rng = random.Random(0)
        for seed in range(8):
            state = random_state(seed)
            attrs = catalog[target].attributes
            rows = [
                tuple(
                    f"item{rng.randrange(6)}"
                    if a == "item"
                    else f"c{rng.randrange(4)}"
                    if a == "clerk"
                    else f"d{rng.randrange(2)}"
                    if a == "dept"
                    else rng.randrange(100)
                    for a in attrs
                )
                for _ in range(2)
            ]
            inserted = Relation(attrs, rows)
            assert verify_insert_maintenance(aux, state, target, inserted), (
                definition,
                target,
                seed,
            )

    def test_delta_expression_references_no_base_relation(self, catalog):
        view = View("V", parse("pi[item, age](Sale join Emp)"))
        aux = auxiliary_views(catalog, view)
        delta = aux.insert_delta_expression("Sale")
        assert delta.relation_names() == frozenset({"Sale__ins", "A_V_Emp"})


class TestStorageComparison:
    """The paper's Section 1 comparison, quantified."""

    def test_aux_views_smaller_without_constraints(self, catalog):
        # Projection makes [18]-style auxiliaries smaller than the full
        # complement when no constraints prune anything.
        view = View("V", parse("pi[item, age](Sale join Emp)"))
        aux = auxiliary_views(catalog, view)
        spec = complement_thm22(catalog, [view])
        state = random_state(3)
        aux_rows = aux.storage_rows(state)
        image = warehouse_state(spec, state)
        complement_rows = sum(
            len(image[name]) for name in spec.complement_names()
        )
        # Auxiliaries duplicate (projected) relations; the complement stores
        # full-width leftovers. Both are data-dependent; assert the tuple
        # counts at least here, where every Sale/Emp tuple goes into an aux.
        assert aux_rows >= 0 and complement_rows >= 0  # both well-defined
        total_aux_width = sum(
            len(expr.attributes({s.name: s.attributes for s in catalog.schemas()}))
            for expr in aux.auxiliaries.values()
        )
        assert total_aux_width < sum(
            len(s.attributes) for s in catalog.schemas()
        )  # narrower, by construction

    def test_complement_wins_with_constraints(self):
        # With referential integrity, the complement of Sale vanishes while
        # the aux route still stores a (projected) copy of both relations.
        catalog = Catalog()
        catalog.relation("Sale", ("item", "clerk"))
        catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
        catalog.inclusion("Sale", ("clerk",), "Emp")
        view = View("Sold", parse("Sale join Emp"))
        aux = auxiliary_views(catalog, view)
        spec = complement_thm22(catalog, [view])

        state = {
            "Sale": Relation(("item", "clerk"), [("TV", "Mary"), ("PC", "John")]),
            "Emp": Relation(("clerk", "age"), [("Mary", 23), ("John", 25)]),
        }
        aux_rows = aux.storage_rows(state)
        image = warehouse_state(spec, state)
        complement_rows = sum(len(image[name]) for name in spec.complement_names())
        assert complement_rows < aux_rows
        assert complement_rows == 0  # everyone sells here; C_Emp empty too
