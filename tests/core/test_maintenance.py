"""Unit tests for :mod:`repro.core.maintenance`."""

from __future__ import annotations

import random

import pytest

from repro import (
    Catalog,
    Database,
    Relation,
    Update,
    View,
    WarehouseError,
    complement_thm22,
    parse,
)
from repro.core.independence import warehouse_state
from repro.core.maintenance import (
    delta_bindings,
    full_recompute_state,
    maintenance_expressions,
    normalize_update,
    refresh_state,
)


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("R", ("a", "b"))
    catalog.relation("S", ("b", "c"), key=("b",))
    return catalog


@pytest.fixture
def spec(catalog):
    return complement_thm22(
        catalog,
        [View("V", parse("R join S")), View("P", parse("pi[b, c](sigma[c = 1](S))"))],
    )


@pytest.fixture
def initial_state():
    return {
        "R": Relation(("a", "b"), [(1, 2), (3, 4)]),
        "S": Relation(("b", "c"), [(2, 1), (4, 0)]),
    }


class TestPlans:
    def test_plan_covers_all_stored_relations(self, spec):
        plan = maintenance_expressions(spec, ["R"])
        assert set(plan.expressions) == set(spec.warehouse_names())

    def test_plan_references_allowed_names_only(self, spec):
        plan = maintenance_expressions(spec, ["R", "S"])
        allowed = set(spec.warehouse_names()) | {
            "R__ins",
            "R__del",
            "S__ins",
            "S__del",
        }
        for exprs in plan.expressions.values():
            assert (
                exprs.inserts.relation_names() | exprs.deletes.relation_names()
            ) <= allowed

    def test_unknown_relation_rejected(self, spec):
        with pytest.raises(WarehouseError):
            maintenance_expressions(spec, ["Ghost"])

    def test_insert_only_specialization_drops_delete_branches(self, spec):
        plan = maintenance_expressions(spec, ["S"], insert_only=True)
        for exprs in plan.expressions.values():
            assert "S__del" not in str(exprs.inserts)
            assert "S__del" not in str(exprs.deletes)

    def test_describe(self, spec):
        plan = maintenance_expressions(spec, ["R"])
        text = plan.describe()
        assert "V'" in text and "updated: ['R']" in text


class TestNormalization:
    def test_normalize_against_reconstruction(self, spec, initial_state):
        warehouse = warehouse_state(spec, initial_state)
        update = Update.insert("R", ("a", "b"), [(1, 2), (9, 9)])
        effective = normalize_update(spec, warehouse, update)
        assert effective.delta_for("R").inserts.to_set() == {(9, 9)}

    def test_unknown_relation_in_update(self, spec, initial_state):
        warehouse = warehouse_state(spec, initial_state)
        with pytest.raises(WarehouseError):
            normalize_update(spec, warehouse, Update.insert("Ghost", ("x",), [(1,)]))

    def test_delta_bindings_names(self, spec, initial_state):
        update = Update.insert("R", ("a", "b"), [(9, 9)])
        bindings = delta_bindings(update, spec.source_scope())
        assert set(bindings) == {"R__ins", "R__del"}


class TestRefresh:
    def test_refresh_matches_recompute_on_stream(self, catalog, spec, initial_state):
        db = Database(catalog, initial_state)
        warehouse = warehouse_state(spec, initial_state)
        rng = random.Random(0)
        for step in range(15):
            relation = rng.choice(["R", "S"])
            schema = catalog[relation]
            if rng.random() < 0.6:
                rows = [tuple(rng.randrange(5) for _ in schema.attributes)]
                update = Update.insert(relation, schema.attributes, rows)
            else:
                existing = sorted(db[relation].rows, key=repr)
                if not existing:
                    continue
                update = Update.delete(
                    relation, schema.attributes, [rng.choice(existing)]
                )
            try:
                db.apply(update)
            except Exception:
                continue  # constraint-violating candidate; sources reject it
            warehouse, _ = refresh_state(spec, warehouse, update)
            assert warehouse == warehouse_state(spec, db.state()), step

    def test_refresh_returns_applied_deltas(self, spec, initial_state):
        warehouse = warehouse_state(spec, initial_state)
        update = Update.insert("S", ("b", "c"), [(7, 1)])
        new_state, applied = refresh_state(spec, warehouse, update)
        assert "P" in applied  # sigma[c = 1] gains (7, 1)
        assert applied["P"].inserts.to_set() == {(7, 1)}

    def test_noop_update_returns_same_content(self, spec, initial_state):
        warehouse = warehouse_state(spec, initial_state)
        update = Update.insert("R", ("a", "b"), [(1, 2)])  # already present
        new_state, applied = refresh_state(spec, warehouse, update)
        assert applied == {}
        assert new_state == warehouse

    def test_plan_reuse(self, spec, initial_state):
        warehouse = warehouse_state(spec, initial_state)
        plan = maintenance_expressions(spec, ["R"])
        update = Update.insert("R", ("a", "b"), [(8, 2)])
        with_plan, _ = refresh_state(spec, warehouse, update, plan)
        without_plan, _ = refresh_state(spec, warehouse, update)
        assert with_plan == without_plan

    def test_full_recompute_baseline(self, catalog, spec, initial_state):
        db = Database(catalog, initial_state)
        warehouse = warehouse_state(spec, initial_state)
        update = db.insert("S", [(9, 1)])
        full = full_recompute_state(spec, warehouse, update)
        assert full == warehouse_state(spec, db.state())
