"""Invalidation coverage: the cached maintenance path changes nothing.

Replays the paper's worked examples (Figure 1 / Examples 2.1-2.4) through
the fast maintenance path (persistent :class:`EvaluationCache` + join fast
paths) and the seed path (fresh memo per refresh, no fast paths), asserting
byte-identical warehouse states after every step. Also pins the headline
cache property: refreshing against a source that did not change evaluates
zero expression nodes the second time around.
"""

from __future__ import annotations

import pytest

from repro import Update, View, Warehouse, parse, specify
from repro.algebra.evaluator import EvalStats
from repro.core.maintenance import refresh_state


def canonical(state):
    """A byte-comparable rendering of a warehouse state."""
    out = {}
    for name in sorted(state):
        relation = state[name]
        attrs = tuple(sorted(relation.attribute_set))
        out[name] = (attrs, tuple(sorted(relation.reorder(attrs).rows, key=repr)))
    return out


def replay_and_compare(catalog, views, initial_state, updates, method="thm22"):
    """Replay ``updates`` through cached and uncached tracks, step-locked."""
    spec = specify(catalog, views, method=method)
    fast = Warehouse(spec, cached=True)
    slow = Warehouse(spec, cached=False)
    fast.initialize(initial_state)
    slow.initialize(initial_state)
    assert canonical(fast.state) == canonical(slow.state)
    for step, update in enumerate(updates):
        fast.apply(update)
        # The seed path: per-refresh memo only, fast paths off.
        new_state, _ = refresh_state(
            slow.spec, slow.state, update, cache=None, fastpath=False
        )
        slow._state = new_state
        assert canonical(fast.state) == canonical(slow.state), f"diverged at step {step}"
    return fast, slow


class TestFigure1Replay:
    def test_example_11_stream(self, figure1_catalog, figure1_database, sold_view):
        updates = [
            Update.insert("Sale", ("item", "clerk"), [("Computer", "Paula")]),
            Update.insert("Emp", ("clerk", "age"), [("Ken", 55)]),
            Update.delete("Sale", ("item", "clerk"), [("VCR", "Mary")]),
            Update.insert("Sale", ("item", "clerk"), [("Radio", "Ken"), ("TV set", "Paula")]),
            Update.delete("Emp", ("clerk", "age"), [("John", 25)]),
        ]
        fast, _ = replay_and_compare(
            figure1_catalog, [sold_view], figure1_database.state(), updates
        )
        # Example 1.1's headline effect still lands through the cached path.
        assert ("Computer", "Paula", 32) in fast.relation("Sold").rows

    def test_example_24_referential_integrity(self, figure1_catalog_ri, sold_view):
        from repro import Database

        db = Database(figure1_catalog_ri)
        db.load("Emp", [("Mary", 23), ("John", 25), ("Paula", 32)])
        db.load("Sale", [("TV set", "Mary"), ("VCR", "Mary"), ("PC", "John")])
        updates = [
            Update.insert("Sale", ("item", "clerk"), [("Computer", "Paula")]),
            Update.insert("Emp", ("clerk", "age"), [("Ken", 55)]),
            Update.insert("Sale", ("item", "clerk"), [("Radio", "Ken")]),
        ]
        replay_and_compare(figure1_catalog_ri, [sold_view], db.state(), updates)


class TestExample21Replay:
    def test_rst_stream(self, example21_catalog):
        views = [View("V1", parse("R join S join T")), View("V2", parse("S"))]
        initial = {
            "R": [(1, 10), (2, 20), (3, 10)],
            "S": [(10, 100), (20, 200)],
            "T": [(100,), (300,)],
        }
        from repro import Relation

        state = {
            "R": Relation(("X", "Y"), initial["R"]),
            "S": Relation(("Y", "Z"), initial["S"]),
            "T": Relation(("Z",), initial["T"]),
        }
        updates = [
            Update.insert("T", ("Z",), [(200,)]),
            Update.insert("R", ("X", "Y"), [(4, 20)]),
            Update.delete("S", ("Y", "Z"), [(10, 100)]),
            Update.insert("S", ("Y", "Z"), [(30, 300)]),
            Update.delete("T", ("Z",), [(300,)]),
        ]
        replay_and_compare(example21_catalog, views, state, updates)


class TestExample22Replay:
    def test_projection_views_stream(self):
        from repro import Catalog, Relation

        catalog = Catalog()
        catalog.relation("R", ("A", "B", "C"))
        views = [
            View("V1", parse("pi[A, B](R)")),
            View("V2", parse("pi[B, C](R)")),
            View("V3", parse("sigma[B = 1](R)")),
        ]
        state = {"R": Relation(("A", "B", "C"), [(1, 1, 1), (1, 2, 2), (2, 1, 2)])}
        updates = [
            Update.insert("R", ("A", "B", "C"), [(3, 1, 3)]),
            Update.delete("R", ("A", "B", "C"), [(1, 2, 2)]),
            Update.insert("R", ("A", "B", "C"), [(2, 2, 1), (3, 3, 3)]),
        ]
        replay_and_compare(catalog, views, state, updates, method="prop22")


class TestExample23Replay:
    def test_keyed_ind_stream(self, example23_catalog, example23_views):
        from repro import Relation

        state = {
            "R1": Relation(("A", "B", "C"), [(1, 10, 100), (2, 20, 200)]),
            "R2": Relation(("A", "C", "D"), [(1, 100, 7)]),
            "R3": Relation(("A", "B"), [(2, 20)]),
        }
        updates = [
            Update.insert("R1", ("A", "B", "C"), [(3, 30, 300)]),
            Update.insert("R2", ("A", "C", "D"), [(2, 200, 8)]),
            Update.insert("R3", ("A", "B"), [(1, 10)]),
            Update.insert("R1", ("A", "B", "C"), [(4, 40, 400)]),
        ]
        replay_and_compare(example23_catalog, example23_views, state, updates)


class TestZeroEvaluationRefresh:
    """The cache's headline guarantee, as an EvalStats assertion.

    Pinned to the interpreted path (``compile_plans=False``): these tests
    document the evaluator's cross-update EvaluationCache, which compiled
    refresh closures replace with their own per-plan memo cells.
    """

    def test_second_refresh_of_unchanged_source_evaluates_nothing(
        self, figure1_catalog, figure1_database, sold_view
    ):
        wh = Warehouse.specify(figure1_catalog, [sold_view], compile_plans=False)
        wh.initialize(figure1_database.state())
        noop = Update.insert("Sale", ("item", "clerk"), [("TV set", "Mary")])
        # First no-op refresh: the source rows are already present, so the
        # state does not change, but the inverse evaluations that *prove*
        # that run for real and warm the cache.
        wh.apply(noop)
        assert wh.last_refresh_stats.nodes_evaluated > 0
        # Second refresh of the unchanged source: every sub-expression is
        # served from the cross-update cache.
        wh.apply(noop)
        assert wh.last_refresh_stats.nodes_evaluated == 0
        assert wh.last_refresh_stats.cache_hits > 0

    def test_uncached_warehouse_always_reevaluates(
        self, figure1_catalog, figure1_database, sold_view
    ):
        spec = specify(figure1_catalog, [sold_view])
        wh = Warehouse(spec, cached=False, compile_plans=False)
        wh.initialize(figure1_database.state())
        noop = Update.insert("Sale", ("item", "clerk"), [("TV set", "Mary")])
        wh.apply(noop)
        wh.apply(noop)
        assert wh.last_refresh_stats.nodes_evaluated > 0
        assert wh.last_refresh_stats.cache_hits == 0

    def test_stats_accumulate(self, figure1_catalog, figure1_database, sold_view):
        wh = Warehouse.specify(figure1_catalog, [sold_view], compile_plans=False)
        wh.initialize(figure1_database.state())
        wh.insert("Sale", [("Computer", "Paula")])
        first_total = wh.eval_stats.nodes_evaluated
        assert first_total > 0
        wh.insert("Sale", [("Camera", "Ken")])
        assert wh.eval_stats.nodes_evaluated >= first_total
        assert isinstance(wh.last_refresh_stats, EvalStats)


class TestBatchedApply:
    def test_batch_equals_sequential(self, figure1_catalog, figure1_database, sold_view):
        spec = specify(figure1_catalog, [sold_view])
        sequential = Warehouse(spec)
        batched = Warehouse(spec)
        sequential.initialize(figure1_database.state())
        batched.initialize(figure1_database.state())
        updates = [
            Update.insert("Sale", ("item", "clerk"), [("Computer", "Paula")]),
            Update.delete("Sale", ("item", "clerk"), [("Computer", "Paula")]),
            Update.insert("Emp", ("clerk", "age"), [("Ken", 55)]),
            Update.insert("Sale", ("item", "clerk"), [("Radio", "Ken")]),
        ]
        for update in updates:
            sequential.apply(update)
        batched.apply_batch(updates)
        assert canonical(sequential.state) == canonical(batched.state)

    def test_empty_batch_is_noop(self, figure1_catalog, figure1_database, sold_view):
        wh = Warehouse.specify(figure1_catalog, [sold_view])
        wh.initialize(figure1_database.state())
        before = canonical(wh.state)
        assert wh.apply_batch([]) == {}
        assert canonical(wh.state) == before
