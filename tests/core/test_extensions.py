"""Targeted coverage: renamed-IND covers, modify updates, warehouse audit."""

from __future__ import annotations

import random

import pytest

from repro import (
    Catalog,
    Database,
    Relation,
    Update,
    View,
    Warehouse,
    complement_thm22,
    parse,
)
from repro.core.covers import enumerate_covers, ind_key_views
from repro.core.independence import verify_complement, warehouse_state


class TestRenamedIndCoversEndToEnd:
    """A multi-attribute renamed IND whose pseudo-view joins a real cover.

    Schema: R(A, B, C) with key A; S(X, Y, Z) with key X;
    IND  S[X, Y] ⊆ R[A, B]  (renamed, two attributes).
    Views: V4 = pi_AC(R)  and  VS = S (a copy).

    The cover {rho[X->A, Y->B](pi[X, Y](S)), V4} reconstructs R completely
    only where S provides (A, B) pairs; the complement holds the rest.
    """

    def make_catalog(self) -> Catalog:
        catalog = Catalog()
        catalog.relation("R", ("A", "B", "C"), key=("A",))
        catalog.relation("S", ("X", "Y", "Z"), key=("X",))
        catalog.inclusion("S", ("X", "Y"), "R", ("A", "B"))
        return catalog

    def make_views(self):
        return [View("V4", parse("pi[A, C](R)")), View("VS", parse("S"))]

    def test_pseudo_view_in_cover(self):
        catalog = self.make_catalog()
        views = self.make_views()
        elements = ind_key_views(catalog, views, "R")
        covers = enumerate_covers(elements, frozenset(catalog.attributes("R")))
        labels = {frozenset(e.label for e in cover) for cover in covers}
        pseudo_label = next(
            e.label for e in elements if e.kind == "ind"
        )
        assert frozenset({pseudo_label, "V4"}) in labels

    def test_inverse_substitutes_renamed_pseudo_view(self):
        catalog = self.make_catalog()
        spec = complement_thm22(catalog, self.make_views())
        inverse = str(spec.inverses["R"])
        assert "rho[X -> A, Y -> B]" in inverse
        assert "VS" in inverse  # S replaced by its warehouse representation
        assert "S" not in inverse.replace("VS", "")  # no bare base reference

    def random_valid_state(self, seed: int):
        rng = random.Random(seed)
        r_rows = {
            f"a{i}": (f"a{i}", rng.randrange(3), rng.randrange(3))
            for i in range(rng.randint(0, 6))
        }
        r = list(r_rows.values())
        s = []
        for index, (a, b, _c) in enumerate(rng.sample(r, rng.randint(0, len(r)))):
            s.append((a, b, rng.randrange(5)))
        # Key X = first column; values a<i> are distinct already.
        return {
            "R": Relation(("A", "B", "C"), r),
            "S": Relation(("X", "Y", "Z"), s),
        }

    def test_reconstruction_exact_on_random_states(self):
        catalog = self.make_catalog()
        spec = complement_thm22(catalog, self.make_views())
        for seed in range(15):
            state = self.random_valid_state(seed)
            ok, problems = verify_complement(spec, state)
            assert ok, (seed, problems)

    def test_complement_smaller_than_without_ind(self):
        with_ind = complement_thm22(self.make_catalog(), self.make_views())
        catalog_no_ind = Catalog()
        catalog_no_ind.relation("R", ("A", "B", "C"), key=("A",))
        catalog_no_ind.relation("S", ("X", "Y", "Z"), key=("X",))
        without_ind = complement_thm22(catalog_no_ind, self.make_views())
        state = self.random_valid_state(3)
        rows_with = sum(
            len(rel)
            for name, rel in warehouse_state(with_ind, state).items()
            if name in with_ind.complement_names()
        )
        rows_without = sum(
            len(rel)
            for name, rel in warehouse_state(without_ind, state).items()
            if name in without_ind.complement_names()
        )
        assert rows_with <= rows_without


class TestModifyUpdates:
    @pytest.fixture
    def setting(self, figure1_catalog, figure1_database, sold_view):
        wh = Warehouse.specify(figure1_catalog, [sold_view])
        wh.initialize(figure1_database)
        return figure1_database, wh

    def test_modify_is_delete_plus_insert(self):
        update = Update.modify(
            "Emp", ("clerk", "age"), [("Mary", 23)], [("Mary", 24)]
        )
        delta = update.delta_for("Emp")
        assert delta.deletes.to_set() == {("Mary", 23)}
        assert delta.inserts.to_set() == {("Mary", 24)}

    def test_modification_maintained(self, setting):
        db, wh = setting
        update = Update.modify(
            "Emp", ("clerk", "age"), [("Mary", 23)], [("Mary", 24)]
        )
        db.apply(update)
        wh.apply(update)
        assert wh.state == warehouse_state(wh.spec, db.state())
        assert ("TV set", "Mary", 24) in wh.relation("Sold")


class TestWarehouseAudit:
    def test_clean_warehouse_audits_clean(
        self, figure1_catalog_ri, sold_view
    ):
        db = Database(figure1_catalog_ri)
        db.load("Emp", [("Mary", 23)])
        db.load("Sale", [("TV", "Mary")])
        wh = Warehouse.specify(figure1_catalog_ri, [sold_view])
        wh.initialize(db)
        assert wh.audit() == []

    def test_lost_notification_detected(self, figure1_catalog_ri, sold_view):
        db = Database(figure1_catalog_ri)
        db.load("Emp", [("Mary", 23), ("Paula", 32)])
        db.load("Sale", [("TV", "Mary")])
        # prune_empty=False keeps C_Sale stored, so the dangling insert is
        # representable (and detectable); with pruning, a constraint-
        # violating update cannot even be represented — see the note below.
        wh = Warehouse.specify(
            figure1_catalog_ri, [sold_view], prune_empty=False
        )
        wh.initialize(db)

        # Two updates happen at the sources; the second notification is
        # "lost" — the warehouse only sees the first... then applying the
        # dependent one out of context leaves a dangling reference.
        first = db.insert("Emp", [("Zoe", 40)])
        second = db.insert("Sale", [("Radio", "Zoe")])
        wh.apply(second)  # the Emp insert never arrived
        violations = wh.audit()
        assert violations
        assert any("inclusion" in v for v in violations)

    def test_pruned_warehouse_silently_drops_unrepresentable_update(
        self, figure1_catalog_ri, sold_view
    ):
        # With C_Sale pruned (provably empty under RI), a constraint-
        # violating dangling insert cannot be represented at all: the
        # warehouse state space only encodes RI-consistent databases. The
        # update is silently a no-op and the audit stays clean — pruning
        # trades fault *detectability* for storage, which is sound exactly
        # because correct sources never emit such updates.
        db = Database(figure1_catalog_ri)
        db.load("Emp", [("Mary", 23)])
        db.load("Sale", [("TV", "Mary")])
        wh = Warehouse.specify(figure1_catalog_ri, [sold_view])
        wh.initialize(db)
        bad = Update.insert("Sale", ("item", "clerk"), [("Radio", "Ghost")])
        wh.apply(bad)
        assert wh.audit() == []
        assert ("Radio", "Ghost") not in wh.reconstruct("Sale")


class TestCheckImplication:
    def test_implied_single_conjunct(self):
        from repro import parse_condition
        from repro.views.analysis import condition_implied_by_checks
        from repro.views.psj import PSJView
        from repro.algebra.conditions import Comparison, attr, const

        catalog = Catalog()
        catalog.relation("O", ("loc", "k"), key=("k",))
        catalog.add_check("O", parse_condition("loc = 'N'"))
        view = PSJView(("O",), condition=Comparison(attr("loc"), "=", const("N")))
        assert condition_implied_by_checks(view, catalog)

    def test_different_constant_not_implied(self):
        from repro import parse_condition
        from repro.views.analysis import condition_implied_by_checks
        from repro.views.psj import PSJView
        from repro.algebra.conditions import Comparison, attr, const

        catalog = Catalog()
        catalog.relation("O", ("loc", "k"), key=("k",))
        catalog.add_check("O", parse_condition("loc = 'N'"))
        view = PSJView(("O",), condition=Comparison(attr("loc"), "=", const("S")))
        assert not condition_implied_by_checks(view, catalog)

    def test_conjunction_partially_implied(self):
        from repro import parse_condition
        from repro.views.analysis import condition_implied_by_checks
        from repro.views.psj import PSJView

        catalog = Catalog()
        catalog.relation("O", ("loc", "k"), key=("k",))
        catalog.add_check("O", parse_condition("loc = 'N'"))
        view = PSJView(("O",), condition=parse_condition("loc = 'N' and k = 1"))
        assert not condition_implied_by_checks(view, catalog)

    def test_multi_conjunct_checks(self):
        from repro import parse_condition
        from repro.views.analysis import condition_implied_by_checks
        from repro.views.psj import PSJView

        catalog = Catalog()
        catalog.relation("O", ("loc", "tier", "k"), key=("k",))
        catalog.add_check("O", parse_condition("loc = 'N' and tier = 1"))
        view = PSJView(("O",), condition=parse_condition("tier = 1"))
        assert condition_implied_by_checks(view, catalog)
