"""Unit tests for :mod:`repro.core.independence`."""

from __future__ import annotations

import pytest

from repro import Catalog, Relation, View, complement_prop22, parse
from repro.core.independence import (
    enumerate_states,
    is_complement,
    reconstructed_state,
    verify_complement,
    verify_one_to_one,
    warehouse_state,
)


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("R", ("a", "b"), key=("a",))
    catalog.relation("S", ("b", "c"))
    return catalog


@pytest.fixture
def spec(catalog):
    return complement_prop22(catalog, [View("V", parse("R join S"))])


class TestMappings:
    def test_warehouse_state_evaluates_all_stored(self, spec):
        state = {
            "R": Relation(("a", "b"), [(1, 2)]),
            "S": Relation(("b", "c"), [(2, 3)]),
        }
        image = warehouse_state(spec, state)
        assert set(image) == {"V", "C_R", "C_S"}
        assert image["V"].to_set() == {(1, 2, 3)}

    def test_roundtrip(self, spec):
        state = {
            "R": Relation(("a", "b"), [(1, 2), (4, 5)]),
            "S": Relation(("b", "c"), [(2, 3)]),
        }
        rebuilt = reconstructed_state(spec, warehouse_state(spec, state))
        assert rebuilt["R"] == state["R"]
        assert rebuilt["S"] == state["S"]

    def test_verify_complement_reports_mismatch(self, catalog):
        # A deliberately broken spec: inverse claims R == V's projection.
        from repro.core.complement import ComplementView, WarehouseSpec

        broken = WarehouseSpec(
            catalog,
            [View("V", parse("R join S"))],
            complements={},
            inverses={"R": parse("pi[a, b](V)"), "S": parse("pi[b, c](V)")},
            method="broken",
        )
        state = {
            "R": Relation(("a", "b"), [(1, 2)]),
            "S": Relation(("b", "c"), []),
        }
        ok, problems = verify_complement(broken, state)
        assert not ok
        assert any("R" in p and "missing" in p for p in problems)


class TestEnumerateStates:
    DOMAINS = {"a": [0, 1], "b": [0], "c": [0]}

    def test_counts_without_constraints(self):
        catalog = Catalog()
        catalog.relation("S", ("b", "c"))
        states = list(enumerate_states(catalog, self.DOMAINS))
        # S has one possible row (0,0): states are {} and {(0,0)}.
        assert len(states) == 2

    def test_key_filtering(self, catalog):
        states = list(enumerate_states(catalog, self.DOMAINS))
        # R rows possible: (0,0), (1,0); all subsets respect key a.
        # S rows possible: (0,0). Total 4 * 2 = 8 states, none invalid.
        assert len(states) == 8

    def test_key_violations_filtered(self):
        catalog = Catalog()
        catalog.relation("R", ("a", "b"), key=("a",))
        states = list(
            enumerate_states(catalog, {"a": [0], "b": [0, 1]})
        )
        # Rows (0,0) and (0,1) share the key: the 2-row state is invalid.
        assert len(states) == 3

    def test_invalid_states_kept_when_requested(self):
        catalog = Catalog()
        catalog.relation("R", ("a", "b"), key=("a",))
        states = list(
            enumerate_states(
                catalog, {"a": [0], "b": [0, 1]}, only_valid=False
            )
        )
        assert len(states) == 4

    def test_missing_domain_raises(self, catalog):
        with pytest.raises(KeyError):
            list(enumerate_states(catalog, {"a": [0]}))

    def test_max_rows_cap(self):
        catalog = Catalog()
        catalog.relation("R", ("a",))
        states = list(
            enumerate_states(
                catalog, {"a": [0, 1, 2]}, max_rows_per_relation=1
            )
        )
        # Empty plus three singletons.
        assert len(states) == 4


class TestOneToOne:
    def test_injective_with_complement(self, catalog, spec):
        states = list(
            enumerate_states(catalog, {"a": [0, 1], "b": [0], "c": [0]})
        )
        ok, witness = verify_one_to_one(spec, states)
        assert ok, witness
        assert is_complement(spec, states)
