"""Unit tests for :mod:`repro.core.hybrid` (Section 6's trade-off)."""

from __future__ import annotations

import pytest

from repro import (
    Catalog,
    Database,
    View,
    Warehouse,
    WarehouseError,
    evaluate,
    parse,
    specify,
)
from repro.core.hybrid import HybridWarehouse


@pytest.fixture
def setting():
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    db = Database(catalog)
    db.load("Emp", [("Mary", 23), ("John", 25), ("Paula", 32)])
    db.load("Sale", [("TV", "Mary"), ("PC", "John")])
    spec = specify(catalog, [View("Sold", parse("Sale join Emp"))])
    return catalog, db, spec


def make_hybrid(db, spec, virtual):
    return HybridWarehouse(spec, virtual, source_access=lambda name: db[name])


class TestConstruction:
    def test_unknown_virtual_rejected(self, setting):
        _, db, spec = setting
        with pytest.raises(WarehouseError):
            make_hybrid(db, spec, ["Nope"])

    def test_virtual_complement_not_stored(self, setting):
        _, db, spec = setting
        hybrid = make_hybrid(db, spec, ["C_Emp"])
        hybrid.initialize(db)
        assert "C_Emp" not in hybrid.state
        assert "C_Sale" in hybrid.state

    def test_storage_strictly_smaller(self, setting):
        _, db, spec = setting
        full = Warehouse(spec)
        full.initialize(db)
        hybrid = make_hybrid(db, spec, ["C_Emp"])
        hybrid.initialize(db)
        assert hybrid.storage_rows() < full.storage_rows()


class TestOperations:
    def test_answers_match_full_warehouse(self, setting):
        _, db, spec = setting
        hybrid = make_hybrid(db, spec, ["C_Emp"])
        hybrid.initialize(db)
        query = "pi[clerk](Sale) union pi[clerk](Emp)"
        assert hybrid.answer(query) == evaluate(parse(query), db.state())

    def test_source_queries_counted(self, setting):
        _, db, spec = setting
        hybrid = make_hybrid(db, spec, ["C_Emp"])
        hybrid.initialize(db)
        assert hybrid.source_queries == 0
        hybrid.answer("pi[clerk](Emp)")  # needs C_Emp -> touches sources
        assert hybrid.source_queries > 0

    def test_queries_avoiding_virtual_stay_free(self, setting):
        _, db, spec = setting
        hybrid = make_hybrid(db, spec, ["C_Emp"])
        hybrid.initialize(db)
        hybrid.answer("Sale")  # Sale's inverse uses C_Sale + Sold only
        assert hybrid.source_queries == 0

    def test_updates_maintained_correctly(self, setting):
        _, db, spec = setting
        hybrid = make_hybrid(db, spec, ["C_Emp"])
        hybrid.initialize(db)
        full = Warehouse(spec)
        full.initialize(db)

        update = db.insert("Sale", [("Radio", "Paula")])
        hybrid.apply(update)
        full.apply(update)
        for name in hybrid.state:
            assert hybrid.state[name] == full.state[name], name
        assert hybrid.reconstruct("Emp") == db["Emp"]

    def test_update_stream_tracks_sources(self, setting):
        _, db, spec = setting
        hybrid = make_hybrid(db, spec, ["C_Emp"])
        hybrid.initialize(db)
        for update in (
            db.insert("Emp", [("Zoe", 40)]),
            db.insert("Sale", [("Mixer", "Zoe")]),
            db.delete("Sale", [("TV", "Mary")]),
            db.delete("Emp", [("Paula", 32)]),
        ):
            hybrid.apply(update)
        assert hybrid.relation("Sold") == evaluate(
            parse("Sale join Emp"), db.state()
        )
        assert hybrid.reconstruct("Sale") == db["Sale"]

    def test_no_virtual_behaves_like_plain_warehouse(self, setting):
        _, db, spec = setting
        hybrid = make_hybrid(db, spec, [])
        hybrid.initialize(db)
        update = db.insert("Sale", [("Radio", "Paula")])
        hybrid.apply(update)
        assert hybrid.source_queries == 0
        full = Warehouse(spec)
        full.initialize(db.copy())
        # db already has the update; rebuild from scratch for comparison.
        full.initialize(db)
        assert hybrid.state == full.state
