"""Unit tests for :mod:`repro.core.translation`."""

from __future__ import annotations

import random

import pytest

from repro import (
    Catalog,
    Relation,
    View,
    WarehouseError,
    complement_thm22,
    evaluate,
    parse,
)
from repro.core.independence import warehouse_state
from repro.core.translation import answer_query, translate_query


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("R", ("a", "b"))
    catalog.relation("S", ("b", "c"), key=("b",))
    return catalog


@pytest.fixture
def spec(catalog):
    return complement_thm22(catalog, [View("V", parse("R join S"))])


def random_state(seed: int):
    rng = random.Random(seed)
    s_rows = {}
    for _ in range(rng.randint(0, 5)):
        row = (rng.randrange(4), rng.randrange(4))
        s_rows[row[0]] = row  # key on b
    return {
        "R": Relation(
            ("a", "b"),
            {(rng.randrange(4), rng.randrange(4)) for _ in range(rng.randint(0, 5))},
        ),
        "S": Relation(("b", "c"), s_rows.values()),
    }


class TestTranslation:
    def test_translation_mentions_only_warehouse_names(self, spec):
        translated = translate_query(spec, parse("pi[a](R) union pi[a](R join S)"))
        assert translated.relation_names() <= set(spec.warehouse_names())

    def test_warehouse_relations_pass_through(self, spec):
        # Queries may also reference warehouse relations directly.
        translated = translate_query(spec, parse("pi[a, b](V)"))
        assert str(translated) == "pi[a, b](V)"

    def test_unknown_name_rejected(self, spec):
        with pytest.raises(WarehouseError):
            translate_query(spec, parse("Ghost"))

    @pytest.mark.parametrize(
        "text",
        [
            "R",
            "S",
            "R join S",
            "pi[b](R) minus pi[b](S)",
            "sigma[a = 1](R) union sigma[a = 2](R)",
            "rho[c -> d](S)",
            "pi[a, c](R join S)",
        ],
    )
    def test_answers_match_source_evaluation(self, spec, text):
        query = parse(text)
        for seed in range(8):
            state = random_state(seed)
            warehouse = warehouse_state(spec, state)
            expected = evaluate(query, state)
            assert answer_query(spec, warehouse, query) == expected, (text, seed)

    def test_translation_is_pure_syntax(self, spec):
        # Translating twice gives the same expression (idempotent on
        # warehouse-only expressions).
        once = translate_query(spec, parse("pi[a](R)"))
        twice = translate_query(spec, once)
        assert once == twice
