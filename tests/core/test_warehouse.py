"""Unit tests for :mod:`repro.core.warehouse` (the runtime)."""

from __future__ import annotations

import pytest

from repro import (
    Catalog,
    Database,
    Relation,
    Update,
    View,
    Warehouse,
    WarehouseError,
    evaluate,
    parse,
)


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    return catalog


@pytest.fixture
def db(catalog) -> Database:
    db = Database(catalog)
    db.load("Emp", [("Mary", 23), ("John", 25), ("Paula", 32)])
    db.load("Sale", [("TV", "Mary"), ("PC", "John")])
    return db


@pytest.fixture
def warehouse(catalog, db) -> Warehouse:
    wh = Warehouse.specify(catalog, [View("Sold", parse("Sale join Emp"))])
    wh.initialize(db)
    return wh


class TestLifecycle:
    def test_uninitialized_access_raises(self, catalog):
        wh = Warehouse.specify(catalog, [View("Sold", parse("Sale join Emp"))])
        with pytest.raises(WarehouseError):
            wh.state
        with pytest.raises(WarehouseError):
            wh.answer("Sale")

    def test_initialize_from_mapping(self, catalog):
        wh = Warehouse.specify(catalog, [View("Sold", parse("Sale join Emp"))])
        wh.initialize(
            {
                "Sale": Relation(("item", "clerk"), [("TV", "Mary")]),
                "Emp": Relation(("clerk", "age"), [("Mary", 23)]),
            }
        )
        assert wh.relation("Sold").to_set() == {("TV", "Mary", 23)}

    def test_storage_accounting(self, warehouse):
        by_relation = warehouse.storage_by_relation()
        assert by_relation["Sold"] == 2
        assert warehouse.storage_rows() == sum(by_relation.values())

    def test_unknown_relation_access(self, warehouse):
        with pytest.raises(WarehouseError):
            warehouse.relation("Ghost")

    def test_repr_states(self, catalog, warehouse):
        fresh = Warehouse.specify(catalog, [View("Sold", parse("Sale join Emp"))])
        assert "uninitialized" in repr(fresh)
        assert "rows" in repr(warehouse)


class TestQueries:
    def test_answer_accepts_strings(self, warehouse):
        result = warehouse.answer("pi[clerk](Sale) union pi[clerk](Emp)")
        assert ("Paula",) in result

    def test_translate_accepts_strings(self, warehouse):
        translated = warehouse.translate("pi[clerk](Sale)")
        assert translated.relation_names() <= set(warehouse.spec.warehouse_names())

    def test_reconstruct_all(self, warehouse, db):
        rebuilt = warehouse.reconstruct_all()
        assert rebuilt["Sale"] == db["Sale"]
        assert rebuilt["Emp"] == db["Emp"]


class TestUpdates:
    def test_insert_convenience(self, warehouse, db):
        db.insert("Sale", [("Radio", "Paula")])
        applied = warehouse.insert("Sale", [("Radio", "Paula")])
        assert "Sold" in applied
        assert warehouse.relation("Sold") == evaluate(
            parse("Sale join Emp"), db.state()
        )

    def test_delete_convenience(self, warehouse, db):
        db.delete("Sale", [("TV", "Mary")])
        warehouse.delete("Sale", [("TV", "Mary")])
        assert warehouse.relation("Sold") == evaluate(
            parse("Sale join Emp"), db.state()
        )

    def test_apply_full_equals_apply(self, catalog, db):
        incremental = Warehouse.specify(
            catalog, [View("Sold", parse("Sale join Emp"))]
        )
        full = Warehouse.specify(catalog, [View("Sold", parse("Sale join Emp"))])
        incremental.initialize(db)
        full.initialize(db)
        update = db.insert("Emp", [("Zoe", 40)])
        incremental.apply(update)
        full.apply_full(update)
        assert incremental.state == full.state

    def test_plan_cache_reused(self, warehouse):
        first = warehouse.maintenance_plan(["Sale"])
        second = warehouse.maintenance_plan(["Sale"])
        assert first is second

    def test_plan_with_options_not_cached(self, warehouse):
        special = warehouse.maintenance_plan(["Sale"], insert_only=True)
        assert special is not warehouse.maintenance_plan(["Sale"])


class TestDescribe:
    def test_describe_shows_spec(self, warehouse):
        assert "inverses" in warehouse.describe()
