"""Unit tests for :mod:`repro.core.warehouse` (the runtime)."""

from __future__ import annotations

import pytest

from repro import (
    Catalog,
    Database,
    Relation,
    Update,
    View,
    Warehouse,
    WarehouseError,
    evaluate,
    parse,
)


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    return catalog


@pytest.fixture
def db(catalog) -> Database:
    db = Database(catalog)
    db.load("Emp", [("Mary", 23), ("John", 25), ("Paula", 32)])
    db.load("Sale", [("TV", "Mary"), ("PC", "John")])
    return db


@pytest.fixture
def warehouse(catalog, db) -> Warehouse:
    wh = Warehouse.specify(catalog, [View("Sold", parse("Sale join Emp"))])
    wh.initialize(db)
    return wh


class TestLifecycle:
    def test_uninitialized_access_raises(self, catalog):
        wh = Warehouse.specify(catalog, [View("Sold", parse("Sale join Emp"))])
        with pytest.raises(WarehouseError):
            wh.state
        with pytest.raises(WarehouseError):
            wh.answer("Sale")

    def test_initialize_from_mapping(self, catalog):
        wh = Warehouse.specify(catalog, [View("Sold", parse("Sale join Emp"))])
        wh.initialize(
            {
                "Sale": Relation(("item", "clerk"), [("TV", "Mary")]),
                "Emp": Relation(("clerk", "age"), [("Mary", 23)]),
            }
        )
        assert wh.relation("Sold").to_set() == {("TV", "Mary", 23)}

    def test_storage_accounting(self, warehouse):
        by_relation = warehouse.storage_by_relation()
        assert by_relation["Sold"] == 2
        assert warehouse.storage_rows() == sum(by_relation.values())

    def test_unknown_relation_access(self, warehouse):
        with pytest.raises(WarehouseError):
            warehouse.relation("Ghost")

    def test_repr_states(self, catalog, warehouse):
        fresh = Warehouse.specify(catalog, [View("Sold", parse("Sale join Emp"))])
        assert "uninitialized" in repr(fresh)
        assert "rows" in repr(warehouse)


class TestQueries:
    def test_answer_accepts_strings(self, warehouse):
        result = warehouse.answer("pi[clerk](Sale) union pi[clerk](Emp)")
        assert ("Paula",) in result

    def test_translate_accepts_strings(self, warehouse):
        translated = warehouse.translate("pi[clerk](Sale)")
        assert translated.relation_names() <= set(warehouse.spec.warehouse_names())

    def test_reconstruct_all(self, warehouse, db):
        rebuilt = warehouse.reconstruct_all()
        assert rebuilt["Sale"] == db["Sale"]
        assert rebuilt["Emp"] == db["Emp"]


class TestUpdates:
    def test_insert_convenience(self, warehouse, db):
        db.insert("Sale", [("Radio", "Paula")])
        applied = warehouse.insert("Sale", [("Radio", "Paula")])
        assert "Sold" in applied
        assert warehouse.relation("Sold") == evaluate(
            parse("Sale join Emp"), db.state()
        )

    def test_delete_convenience(self, warehouse, db):
        db.delete("Sale", [("TV", "Mary")])
        warehouse.delete("Sale", [("TV", "Mary")])
        assert warehouse.relation("Sold") == evaluate(
            parse("Sale join Emp"), db.state()
        )

    def test_apply_full_equals_apply(self, catalog, db):
        incremental = Warehouse.specify(
            catalog, [View("Sold", parse("Sale join Emp"))]
        )
        full = Warehouse.specify(catalog, [View("Sold", parse("Sale join Emp"))])
        incremental.initialize(db)
        full.initialize(db)
        update = db.insert("Emp", [("Zoe", 40)])
        incremental.apply(update)
        full.apply_full(update)
        assert incremental.state == full.state

    def test_plan_cache_reused(self, warehouse):
        first = warehouse.maintenance_plan(["Sale"])
        second = warehouse.maintenance_plan(["Sale"])
        assert first is second

    def test_plan_with_options_not_cached(self, warehouse):
        special = warehouse.maintenance_plan(["Sale"], insert_only=True)
        assert special is not warehouse.maintenance_plan(["Sale"])


class TestDescribe:
    def test_describe_shows_spec(self, warehouse):
        assert "inverses" in warehouse.describe()


class TestQuerySanitizer:
    """REPRO_CHECK_QUERIES=1: answer() cross-checks its traced reads."""

    def armed(self, catalog, db, monkeypatch) -> Warehouse:
        monkeypatch.setenv("REPRO_CHECK_QUERIES", "1")
        wh = Warehouse.specify(catalog, [View("Sold", parse("Sale join Emp"))])
        wh.initialize(db)
        return wh

    def test_honest_answers_pass(self, catalog, db, monkeypatch):
        wh = self.armed(catalog, db, monkeypatch)
        assert wh.answer("Sale").to_set() == {("TV", "Mary"), ("PC", "John")}
        assert wh.answer("pi[age](Emp)").to_set() == {(23,), (25,), (32,)}

    def test_poisoned_cached_plan_fails_loudly(self, catalog, db, monkeypatch):
        # A corrupted cache entry routes Emp through C_Sale — outside the
        # translation's static read set. The sanitizer recomputes that set
        # from the spec, so the poisoned plan cannot self-certify.
        wh = self.armed(catalog, db, monkeypatch)
        wh.translation_cache.store(parse("Emp"), parse("pi[clerk](C_Sale)"))
        with pytest.raises(WarehouseError, match="query sanitizer"):
            wh.answer("Emp")

    def test_same_poison_goes_unnoticed_when_disarmed(self, catalog, db, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK_QUERIES", raising=False)
        wh = Warehouse.specify(catalog, [View("Sold", parse("Sale join Emp"))])
        wh.initialize(db)
        wh.translation_cache.store(parse("Emp"), parse("pi[clerk](C_Sale)"))
        wh.answer("Emp")  # wrong answer, no alarm — the sanitizer has teeth

    def test_sanitizer_composes_with_tracing(self, catalog, db, monkeypatch):
        wh = self.armed(catalog, db, monkeypatch)
        wh.enable_tracing()
        wh.answer("Sale")
        assert wh.last_trace("answer") is not None
        # The throwaway sanitize buffer was detached from the tracer again.
        assert len(wh.tracer.collectors) == 1


class TestTranslationCache:
    def test_repeated_answers_hit_the_cache(self, warehouse):
        warehouse.answer("Sale")
        warehouse.answer("Sale")
        warehouse.answer("pi[clerk](Sale)")
        cache = warehouse.translation_cache
        assert cache.hits == 1
        assert cache.misses == 2
        assert len(cache) == 2

    def test_recertify_queries_evicts_on_digest_mismatch(self, warehouse):
        warehouse.answer("Sale")
        assert len(warehouse.translation_cache) == 1
        stale = {"translation_digest": "not-the-real-digest"}
        assert warehouse.recertify_queries(stale) is True
        assert len(warehouse.translation_cache) == 0
        assert warehouse.metrics.counter("warehouse.plan_evictions").value == 1

    def test_recertify_queries_keeps_plans_on_match(self, warehouse):
        from repro.core.translation import translation_digest

        warehouse.answer("Sale")
        fresh = {"translation_digest": translation_digest(warehouse.spec)}
        assert warehouse.recertify_queries(fresh) is False
        assert warehouse.recertify_queries() is False
        assert len(warehouse.translation_cache) == 1
