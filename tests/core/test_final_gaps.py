"""Last-mile coverage: full-recompute aggregates, spec aliases, misc."""

from __future__ import annotations

import pytest

from repro import Catalog, Database, View, Warehouse, parse
from repro.core.aggregates import AggregateView, agg_sum, count


@pytest.fixture
def setting():
    catalog = Catalog()
    catalog.relation("Orders", ("okey", "seg", "price"), key=("okey",))
    db = Database(catalog)
    db.load("Orders", [(1, "A", 10), (2, "B", 20), (3, "A", 5)])
    wh = Warehouse.specify(catalog, [View("Fact", parse("Orders"))])
    wh.initialize(db)
    wh.attach_aggregate(
        AggregateView("BySeg", "Fact", ("seg",), [count(), agg_sum("price")])
    )
    return db, wh


class TestApplyFullWithAggregates:
    def test_recompute_path_refreshes_aggregates(self, setting):
        db, wh = setting
        update = db.insert("Orders", [(4, "B", 100)])
        wh.apply_full(update)
        assert ("B", 2, 120) in wh.aggregate("BySeg")

    def test_incremental_and_full_agree_on_aggregates(self, setting):
        db, wh = setting
        other = Warehouse.specify(db.catalog, [View("Fact", parse("Orders"))])
        other.initialize(
            {
                "Orders": db["Orders"].difference(
                    db["Orders"].select(lambda r: False)
                )
            }
        )
        other.attach_aggregate(
            AggregateView("BySeg", "Fact", ("seg",), [count(), agg_sum("price")])
        )
        update = db.insert("Orders", [(4, "B", 100), (5, "C", 7)])
        wh.apply(update)
        other.apply_full(update)
        assert wh.aggregate("BySeg") == other.aggregate("BySeg")


class TestSpecAliases:
    def test_storage_expressions_alias(self, setting):
        _, wh = setting
        assert wh.spec.storage_expressions() == wh.spec.definitions_over_sources()


class TestCliProp22:
    def test_spec_method_prop22(self, tmp_path, capsys):
        import json

        from repro.__main__ import main

        data = {
            "relations": [
                {"name": "Sale", "attributes": ["item", "clerk"]},
                {"name": "Emp", "attributes": ["clerk", "age"], "key": ["clerk"]},
            ],
            "views": [{"name": "Sold", "definition": "Sale join Emp"}],
        }
        path = tmp_path / "schema.json"
        path.write_text(json.dumps(data))
        assert main(["spec", str(path), "--method", "prop22"]) == 0
        out = capsys.readouterr().out
        assert "method: prop22" in out
