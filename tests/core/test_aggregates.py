"""Unit tests for :mod:`repro.core.aggregates` (Section 5, last paragraph)."""

from __future__ import annotations

import random

import pytest

from repro import Catalog, Database, Relation, View, Warehouse, WarehouseError, parse
from repro.storage.update import Delta
from repro.core.aggregates import (
    AggregateView,
    Measure,
    agg_avg,
    agg_max,
    agg_min,
    agg_sum,
    count,
)


@pytest.fixture
def fact() -> Relation:
    return Relation(
        ("loc", "amount"),
        [("N", 10), ("N", 20), ("S", 5), ("S", 7), ("W", 1)],
    )


def make_view():
    return AggregateView(
        "ByLoc",
        "F",
        ("loc",),
        [count(), agg_sum("amount"), agg_avg("amount"), agg_min("amount"), agg_max("amount")],
    )


class TestRecompute:
    def test_groups(self, fact):
        view = make_view()
        view.recompute(fact)
        table = view.table()
        assert table.attributes == (
            "loc",
            "n",
            "sum_amount",
            "avg_amount",
            "min_amount",
            "max_amount",
        )
        rows = {row[0]: row for row in table}
        assert rows["N"] == ("N", 2, 30, 15.0, 10, 20)
        assert rows["S"] == ("S", 2, 12, 6.0, 5, 7)
        assert rows["W"] == ("W", 1, 1, 1.0, 1, 1)

    def test_measure_validation(self):
        with pytest.raises(WarehouseError):
            Measure("median", "x", "m")
        with pytest.raises(WarehouseError):
            Measure("sum", None, "s")
        with pytest.raises(WarehouseError):
            AggregateView("A", "F", ("g",), [])

    def test_unknown_group_attribute(self, fact):
        view = AggregateView("A", "F", ("ghost",), [count()])
        with pytest.raises(WarehouseError):
            view.recompute(fact)


class TestIncremental:
    def apply(self, view, fact, inserts=(), deletes=()):
        delta = Delta(
            "F",
            inserts=Relation(("loc", "amount"), inserts),
            deletes=Relation(("loc", "amount"), deletes),
        )
        new_fact = fact.difference(delta.deletes).union(delta.inserts)
        view.apply_delta(delta, new_fact)
        return new_fact

    def test_insert_updates_all_measures(self, fact):
        view = make_view()
        view.recompute(fact)
        self.apply(view, fact, inserts=[("N", 40)])
        row = {r[0]: r for r in view.table()}["N"]
        assert row == ("N", 3, 70, 70 / 3, 10, 40)

    def test_new_group_created(self, fact):
        view = make_view()
        view.recompute(fact)
        self.apply(view, fact, inserts=[("E", 3)])
        assert ("E", 1, 3, 3.0, 3, 3) in view.table()

    def test_delete_non_extremum_is_pure_delta(self, fact):
        view = make_view()
        view.recompute(fact)
        self.apply(view, fact, deletes=[("S", 7)])
        row = {r[0]: r for r in view.table()}["S"]
        assert row == ("S", 1, 5, 5.0, 5, 5)

    def test_delete_extremum_repairs_from_fact(self, fact):
        view = make_view()
        view.recompute(fact)
        self.apply(view, fact, deletes=[("N", 20)])
        row = {r[0]: r for r in view.table()}["N"]
        assert row == ("N", 1, 10, 10.0, 10, 10)

    def test_group_vanishes_when_empty(self, fact):
        view = make_view()
        view.recompute(fact)
        self.apply(view, fact, deletes=[("W", 1)])
        assert "W" not in {row[0] for row in view.table()}

    def test_matches_recompute_on_random_stream(self):
        rng = random.Random(4)
        fact = Relation(("g", "v"), [(rng.randrange(3), rng.randrange(10)) for _ in range(8)])
        incremental = make_view_gv()
        incremental.recompute(fact)
        for _ in range(30):
            if rng.random() < 0.6 or not fact:
                inserts = [(rng.randrange(3), rng.randrange(10))]
                inserts = [r for r in inserts if r not in fact]
                deletes = []
            else:
                inserts = []
                deletes = [rng.choice(sorted(fact.rows, key=repr))]
            fact = self_apply(incremental, fact, inserts, deletes)
            reference = make_view_gv()
            reference.recompute(fact)
            assert incremental.table() == reference.table()


def make_view_gv():
    return AggregateView(
        "A", "F", ("g",), [count(), agg_sum("v"), agg_min("v"), agg_max("v")]
    )


def self_apply(view, fact, inserts, deletes):
    delta = Delta(
        "F",
        inserts=Relation(("g", "v"), inserts),
        deletes=Relation(("g", "v"), deletes),
    )
    new_fact = fact.difference(delta.deletes).union(delta.inserts)
    view.apply_delta(delta, new_fact)
    return new_fact


class TestWarehouseIntegration:
    @pytest.fixture
    def setup(self):
        catalog = Catalog()
        catalog.relation("Orders", ("okey", "custkey", "price"), key=("okey",))
        catalog.relation("Customer", ("custkey", "segment"), key=("custkey",))
        catalog.inclusion("Orders", ("custkey",), "Customer")
        db = Database(catalog)
        db.load("Customer", [(1, "RETAIL"), (2, "CORP")])
        db.load("Orders", [(10, 1, 100), (11, 2, 250), (12, 1, 50)])
        views = [
            View("Fact", parse("Orders join Customer")),
            View("CustomerDim", parse("Customer")),
        ]
        wh = Warehouse.specify(catalog, views)
        wh.initialize(db)
        return catalog, db, wh

    def test_attach_and_query(self, setup):
        _, _, wh = setup
        wh.attach_aggregate(
            AggregateView("BySegment", "Fact", ("segment",), [count(), agg_sum("price")])
        )
        table = wh.aggregate("BySegment")
        assert table.to_set() == {("RETAIL", 2, 150), ("CORP", 1, 250)}

    def test_aggregate_follows_updates(self, setup):
        _, db, wh = setup
        wh.attach_aggregate(
            AggregateView("BySegment", "Fact", ("segment",), [count(), agg_sum("price")])
        )
        wh.apply(db.insert("Orders", [(13, 2, 60)]))
        table = wh.aggregate("BySegment")
        assert ("CORP", 2, 310) in table
        wh.apply(db.delete("Orders", [(10, 1, 100)]))
        assert ("RETAIL", 1, 50) in wh.aggregate("BySegment")

    def test_unknown_source_rejected(self, setup):
        _, _, wh = setup
        with pytest.raises(WarehouseError):
            wh.attach_aggregate(AggregateView("A", "Ghost", ("x",), [count()]))

    def test_unknown_aggregate_lookup(self, setup):
        _, _, wh = setup
        with pytest.raises(WarehouseError):
            wh.aggregate("Nope")
