"""Unit tests for :mod:`repro.core.complement`."""

from __future__ import annotations

import random

import pytest

from repro import (
    Catalog,
    Relation,
    View,
    WarehouseError,
    complement_prop22,
    complement_thm22,
    parse,
    specify,
)
from repro.core.independence import verify_complement


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    return catalog


@pytest.fixture
def views():
    return [View("Sold", parse("Sale join Emp"))]


def random_state(catalog, seed):
    rng = random.Random(seed)
    state = {}
    for schema in catalog.schemas():
        rows = set()
        for _ in range(rng.randint(0, 6)):
            row = []
            for attr in schema.attributes:
                row.append(rng.randrange(4))
            rows.add(tuple(row))
        if schema.key is not None:
            # Keep one row per key value.
            seen = {}
            positions = [schema.attributes.index(a) for a in schema.key]
            for row in sorted(rows, key=repr):
                seen[tuple(row[p] for p in positions)] = row
            rows = set(seen.values())
        state[schema.name] = Relation(schema.attributes, rows)
    return state


class TestSpecStructure:
    def test_names(self, catalog, views):
        spec = complement_thm22(catalog, views)
        assert spec.view_names() == ("Sold",)
        assert set(spec.complement_names()) == {"C_Sale", "C_Emp"}
        assert set(spec.warehouse_names()) == {"Sold", "C_Sale", "C_Emp"}

    def test_warehouse_scope(self, catalog, views):
        spec = complement_thm22(catalog, views)
        scope = spec.warehouse_scope()
        assert scope["Sold"] == ("item", "clerk", "age")
        assert scope["C_Emp"] == ("clerk", "age")

    def test_definitions_over_sources_reference_only_bases(self, catalog, views):
        spec = complement_thm22(catalog, views)
        for name, definition in spec.definitions_over_sources().items():
            assert definition.relation_names() <= {"Sale", "Emp"}, name

    def test_inverses_reference_only_warehouse(self, catalog, views):
        spec = complement_thm22(catalog, views)
        allowed = set(spec.warehouse_names())
        for relation, inverse in spec.inverses.items():
            assert inverse.relation_names() <= allowed, relation

    def test_complement_name_collision_avoided(self, catalog):
        views = [View("C_Sale", parse("Sale"))]  # steal the natural name
        spec = complement_thm22(catalog, views)
        assert spec.complements["Sale"].name != "C_Sale"

    def test_describe_mentions_everything(self, catalog, views):
        spec = complement_thm22(catalog, views)
        text = spec.describe()
        assert "Sold" in text and "C_Emp" in text and "Equation 4" in text

    def test_inverse_for_unknown_relation(self, catalog, views):
        spec = complement_thm22(catalog, views)
        with pytest.raises(WarehouseError):
            spec.inverse_for("Nope")


class TestValidation:
    def test_duplicate_view_names_rejected(self, catalog):
        views = [View("V", parse("Sale")), View("V", parse("Emp"))]
        with pytest.raises(WarehouseError):
            complement_thm22(catalog, views)

    def test_view_name_colliding_with_base_rejected(self, catalog):
        with pytest.raises(WarehouseError):
            complement_thm22(catalog, [View("Sale", parse("Emp"))])

    def test_non_psj_view_rejected(self, catalog):
        views = [View("U", parse("pi[clerk](Sale) union pi[clerk](Emp)"))]
        with pytest.raises(Exception):
            complement_thm22(catalog, views)

    def test_unknown_relation_rejected(self, catalog):
        with pytest.raises(Exception):
            complement_thm22(catalog, [View("V", parse("Ghost"))])

    def test_specify_dispatch(self, catalog, views):
        assert specify(catalog, views, method="prop22").method == "prop22"
        assert specify(catalog, views, method="thm22").method == "thm22"
        with pytest.raises(WarehouseError):
            specify(catalog, views, method="nope")


class TestCorrectness:
    """Reconstruction is exact on random constraint-satisfying states."""

    def test_prop22_reconstructs(self, catalog, views):
        spec = complement_prop22(catalog, views)
        for seed in range(10):
            state = random_state(catalog, seed)
            ok, problems = verify_complement(spec, state)
            assert ok, (seed, problems)

    def test_thm22_reconstructs(self, catalog, views):
        spec = complement_thm22(catalog, views)
        for seed in range(10):
            state = random_state(catalog, seed)
            ok, problems = verify_complement(spec, state)
            assert ok, (seed, problems)

    def test_ablation_flags(self, catalog, views):
        no_constraints = complement_thm22(
            catalog, views, use_keys=False, use_inds=False, prune_empty=False
        )
        baseline = complement_prop22(catalog, views)
        for relation in ("Sale", "Emp"):
            assert str(no_constraints.complements[relation].definition) == str(
                baseline.complements[relation].definition
            )

    def test_multiple_views_share_hat(self, catalog):
        views = [
            View("Sold", parse("Sale join Emp")),
            View("EmpCopy", parse("Emp")),
        ]
        spec = complement_thm22(catalog, views)
        # EmpCopy makes C_Emp provably empty.
        assert spec.complements["Emp"].provably_empty
        for seed in range(10):
            state = random_state(catalog, seed)
            ok, problems = verify_complement(spec, state)
            assert ok, (seed, problems)


class TestKeyCoverReconstruction:
    """Key-based covers must never fabricate tuples (extension-join safety)."""

    def test_projections_with_key_reconstruct_exactly(self):
        catalog = Catalog()
        catalog.relation("R", ("k", "x", "y"), key=("k",))
        views = [View("VX", parse("pi[k, x](R)")), View("VY", parse("pi[k, y](R)"))]
        spec = complement_thm22(catalog, views)
        assert spec.complements["R"].provably_empty
        for seed in range(10):
            state = random_state(catalog, seed)
            ok, problems = verify_complement(spec, state)
            assert ok, (seed, problems)

    def test_without_key_projections_do_not_reconstruct(self):
        catalog = Catalog()
        catalog.relation("R", ("k", "x", "y"))  # no key!
        views = [View("VX", parse("pi[k, x](R)")), View("VY", parse("pi[k, y](R)"))]
        spec = complement_thm22(catalog, views)
        # Joining the projections is lossy without the key: the complement
        # must stay (and reconstruction must still be exact thanks to it).
        assert not spec.complements["R"].provably_empty
        for seed in range(10):
            state = random_state(catalog, seed)
            ok, problems = verify_complement(spec, state)
            assert ok, (seed, problems)
