"""E8 — Unit tests for :mod:`repro.core.selfmaint` (Section 4 closing case)."""

from __future__ import annotations

import pytest

from repro import Catalog, Relation, View, evaluate, parse
from repro.algebra.deltas import del_name, ins_name
from repro.core.selfmaint import (
    is_select_only_update_independent,
    self_maintainable_without_complement,
    self_maintenance_analysis,
)


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("R", ("a", "b"))
    catalog.relation("S", ("b", "c"))
    return catalog


class TestSelectOnly:
    def test_selection_view_is_update_independent(self, catalog):
        view = View("W", parse("sigma[a = 1](R)"))
        assert is_select_only_update_independent(view, catalog)

    def test_projection_view_is_not(self, catalog):
        view = View("W", parse("pi[a](R)"))
        assert not is_select_only_update_independent(view, catalog)

    def test_join_view_is_not(self, catalog):
        view = View("W", parse("R join S"))
        assert not is_select_only_update_independent(view, catalog)

    def test_copy_view_is(self, catalog):
        assert is_select_only_update_independent(View("W", parse("R")), catalog)

    def test_non_psj_view_is_not(self, catalog):
        view = View("W", parse("pi[b](R) union pi[b](S)"))
        assert not is_select_only_update_independent(view, catalog)

    def test_paper_calculation(self, catalog):
        # w' = sigma(r ∪ Δr) = w ∪ sigma(Δr): verify numerically.
        state = {"R": Relation(("a", "b"), [(1, 1), (2, 2)])}
        sigma = parse("sigma[a = 1](R)")
        w = evaluate(sigma, state)
        delta = Relation(("a", "b"), [(1, 9), (3, 3)])
        new_state = {"R": state["R"].union(delta)}
        w_new = evaluate(sigma, new_state)
        assert w_new == w.union(evaluate(sigma, {"R": delta}))

    def test_paper_calculation_delete(self, catalog):
        # The dual: w' = sigma(r − ∇r) = w − sigma(∇r).
        state = {"R": Relation(("a", "b"), [(1, 1), (1, 9), (2, 2)])}
        sigma = parse("sigma[a = 1](R)")
        w = evaluate(sigma, state)
        removed = Relation(("a", "b"), [(1, 9), (2, 2)])
        new_state = {"R": state["R"].difference(removed)}
        w_new = evaluate(sigma, new_state)
        assert w_new == w.difference(evaluate(sigma, {"R": removed}))
        assert w_new == Relation(("a", "b"), [(1, 1)])

    def test_select_only_guarantee_matches_dataflow(self, catalog):
        # The Section 4 closing guarantee, cross-checked against the
        # prover's dataflow analysis: a select-only view maintained
        # without complement reads no source relation for any update
        # shape — inserts or deletes.
        from repro.analysis.dataflow import views_only_read_sets

        view = View("W", parse("sigma[a = 1](R)"))
        assert is_select_only_update_independent(view, catalog)
        report = views_only_read_sets(catalog, [view])
        assert report.update_independent
        for kind in ("insert", "delete"):
            assert report.reads_for("R", kind) == ()


class TestSyntacticCheck:
    def test_select_only_views_pass(self, catalog):
        views = [View("W", parse("sigma[a = 1](R)"))]
        verdict = self_maintainable_without_complement(catalog, views, ["R"])
        assert verdict == {"W": True}

    def test_join_view_fails_for_inserts(self, catalog):
        views = [View("V", parse("R join S"))]
        verdict = self_maintainable_without_complement(
            catalog, views, ["R"], insert_only=True
        )
        assert verdict == {"V": False}

    def test_join_view_with_copies_passes(self, catalog):
        # Materializing copies of both sides makes the join maintainable.
        views = [
            View("V", parse("R join S")),
            View("CopyR", parse("R")),
            View("CopyS", parse("S")),
        ]
        verdict = self_maintainable_without_complement(catalog, views, ["R", "S"])
        assert verdict["V"] is True

    def test_projection_deletes_need_base(self, catalog):
        views = [View("P", parse("pi[a](R)"))]
        inserts = self_maintainable_without_complement(
            catalog, views, ["R"], insert_only=True
        )
        deletes = self_maintainable_without_complement(
            catalog, views, ["R"], delete_only=True
        )
        # pi inserts fold into the view itself (pi(R) is materialized);
        # deletes need the new value of pi(R), which folds as well.
        assert inserts["P"] is True
        assert deletes["P"] is False

    def test_update_to_unrelated_relation_trivially_ok(self, catalog):
        views = [View("W", parse("sigma[a = 1](R)"))]
        verdict = self_maintainable_without_complement(catalog, views, ["S"])
        assert verdict == {"W": True}


class TestAnalysisReport:
    def test_pure_selection_warehouse(self, catalog):
        views = [View("W", parse("sigma[a = 1](R)"))]
        report = self_maintenance_analysis(catalog, views)
        assert report.select_only_views == ("W",)
        assert not report.needs_complement

    def test_join_warehouse_needs_complement(self, catalog):
        views = [View("V", parse("R join S"))]
        report = self_maintenance_analysis(catalog, views)
        assert report.needs_complement
        assert report.select_only_views == ()

    def test_describe(self, catalog):
        report = self_maintenance_analysis(
            catalog, [View("W", parse("sigma[a = 1](R)"))]
        )
        assert "select-only" in report.describe()
