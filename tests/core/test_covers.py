"""Unit tests for :mod:`repro.core.covers`."""

from __future__ import annotations

import pytest

from repro import Catalog, View, parse
from repro.core.covers import (
    CoverElement,
    enumerate_covers,
    ind_key_views,
    ind_views,
    key_views,
)


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("R", ("A", "B", "C"), key=("A",))
    catalog.relation("S", ("A", "D"), key=("A",))
    catalog.relation("NoKey", ("A", "E"))
    catalog.inclusion("S", ("A",), "R")
    return catalog


class TestKeyViews:
    def test_views_retaining_key(self, catalog):
        views = [
            View("V1", parse("pi[A, B](R)")),
            View("V2", parse("pi[B, C](R)")),  # drops the key
            View("V3", parse("R join S")),
        ]
        elements = key_views(catalog, views, "R")
        assert {e.label for e in elements} == {"V1", "V3"}

    def test_relevant_attributes_intersected(self, catalog):
        views = [View("V3", parse("R join S"))]
        (element,) = key_views(catalog, views, "R")
        assert element.attributes == frozenset({"A", "B", "C"})

    def test_no_key_means_no_elements(self, catalog):
        views = [View("V", parse("NoKey"))]
        assert key_views(catalog, views, "NoKey") == []

    def test_view_not_involving_relation_skipped(self, catalog):
        views = [View("V", parse("S"))]
        assert key_views(catalog, views, "R") == []


class TestIndViews:
    def test_pseudo_view_built(self, catalog):
        elements = ind_views(catalog, "R")
        assert len(elements) == 1
        element = elements[0]
        assert element.kind == "ind"
        assert str(element.expression) == "pi[A](S)"
        assert element.attributes == frozenset({"A"})

    def test_ind_not_covering_key_skipped(self):
        catalog = Catalog()
        catalog.relation("R", ("A", "B"), key=("A",))
        catalog.relation("S", ("B", "C"))
        catalog.inclusion("S", ("B",), "R", ("B",))  # misses the key A
        assert ind_views(catalog, "R") == []

    def test_renamed_ind_wrapped_in_rho(self):
        catalog = Catalog()
        catalog.relation("Customer", ("custkey", "name"), key=("custkey",))
        catalog.relation("Orders", ("okey", "cust"), key=("okey",))
        catalog.inclusion("Orders", ("cust",), "Customer", ("custkey",))
        (element,) = ind_views(catalog, "Customer")
        assert "rho" in str(element.expression)
        assert element.attributes == frozenset({"custkey"})

    def test_combined(self, catalog):
        views = [View("V1", parse("pi[A, B](R)"))]
        elements = ind_key_views(catalog, views, "R")
        assert {e.kind for e in elements} == {"view", "ind"}


def element(label: str, attrs) -> CoverElement:
    from repro.algebra.expressions import RelationRef

    return CoverElement("view", label, RelationRef(label), frozenset(attrs))


class TestEnumerateCovers:
    def test_single_element_cover(self):
        covers = enumerate_covers([element("V", "ABC")], frozenset("ABC"))
        assert len(covers) == 1

    def test_minimality(self):
        covers = enumerate_covers(
            [element("Full", "ABC"), element("P1", "AB"), element("P2", "AC")],
            frozenset("ABC"),
        )
        labels = {frozenset(e.label for e in cover) for cover in covers}
        # {Full, P1} is not minimal (Full alone covers); {P1, P2} is.
        assert labels == {frozenset({"Full"}), frozenset({"P1", "P2"})}

    def test_no_cover_when_attribute_unreachable(self):
        covers = enumerate_covers([element("P1", "AB")], frozenset("ABC"))
        assert covers == []

    def test_empty_target_not_used(self):
        # Degenerate: an empty target is covered by the empty set; the
        # enumerator starts at size 1, so no cover of size 0 is reported,
        # matching the paper (covers are non-empty view sets).
        covers = enumerate_covers([element("P1", "AB")], frozenset())
        assert [tuple(e.label for e in c) for c in covers] == [("P1",)]

    def test_superset_covers_pruned(self):
        covers = enumerate_covers(
            [element("X", "AB"), element("Y", "BC"), element("Z", "CD")],
            frozenset("ABCD"),
        )
        labels = {frozenset(e.label for e in cover) for cover in covers}
        # {X, Z} already covers ABCD, so {X, Y, Z} is not minimal.
        assert labels == {frozenset({"X", "Z"})}

    def test_multiple_minimal_covers_of_same_size(self):
        covers = enumerate_covers(
            [element("X", "AB"), element("Y", "CD"), element("P", "AC"),
             element("Q", "BD")],
            frozenset("ABCD"),
        )
        labels = {frozenset(e.label for e in cover) for cover in covers}
        # Exactly the 2-element combinations that cover ABCD.
        assert labels == {frozenset({"X", "Y"}), frozenset({"P", "Q"})}
