"""Unit tests for :mod:`repro.integrator` (sources, channels, integrators)."""

from __future__ import annotations

import pytest

from repro import Catalog, SchemaError, Update, View, parse
from repro.integrator import Channel, ComplementIntegrator, NaiveIntegrator, Source


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    return catalog


@pytest.fixture
def pipeline(catalog):
    """Figure 1: a Sales source, a Company source, one channel."""
    channel = Channel()
    sales = Source("SalesDB", catalog, ("Sale",), channel)
    company = Source("CompanyDB", catalog, ("Emp",), channel)
    sales.load("Sale", [("TV", "Mary"), ("PC", "John")])
    company.load("Emp", [("Mary", 23), ("John", 25), ("Paula", 32)])
    return channel, sales, company


class TestSource:
    def test_ownership_enforced(self, catalog):
        source = Source("SalesDB", catalog, ("Sale",))
        with pytest.raises(SchemaError):
            source.insert("Emp", [("Zoe", 40)])
        with pytest.raises(SchemaError):
            source.relation("Emp")

    def test_unknown_relation_rejected(self, catalog):
        with pytest.raises(SchemaError):
            Source("S", catalog, ("Ghost",))

    def test_local_constraints_enforced(self, catalog):
        source = Source("CompanyDB", catalog, ("Emp",))
        source.load("Emp", [("Mary", 23)])
        from repro import ConstraintViolation

        with pytest.raises(ConstraintViolation):
            source.insert("Emp", [("Mary", 99)])  # key violation

    def test_cross_source_constraints_not_local(self):
        catalog = Catalog()
        catalog.relation("Sale", ("item", "clerk"))
        catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
        catalog.inclusion("Sale", ("clerk",), "Emp")
        # The Sales source cannot see Emp, so the IND is not checked there
        # (source autonomy); the insert goes through locally.
        source = Source("SalesDB", catalog, ("Sale",))
        source.insert("Sale", [("TV", "Ghost")])
        assert ("TV", "Ghost") in source.relation("Sale")

    def test_updates_published(self, pipeline):
        channel, sales, _ = pipeline
        sales.insert("Sale", [("Radio", "Paula")])
        assert channel.pending() == 1

    def test_noop_updates_not_published(self, pipeline):
        channel, sales, _ = pipeline
        sales.insert("Sale", [("TV", "Mary")])  # already present
        assert channel.pending() == 0

    def test_load_not_published(self, pipeline):
        channel, _, _ = pipeline
        assert channel.pending() == 0


class TestChannel:
    def test_fifo_order_and_sequence(self, pipeline):
        channel, sales, company = pipeline
        sales.insert("Sale", [("Radio", "Paula")])
        company.insert("Emp", [("Zoe", 40)])
        first = channel.poll()
        second = channel.poll()
        assert first.source == "SalesDB" and second.source == "CompanyDB"
        assert first.sequence < second.sequence
        assert channel.poll() is None
        assert channel.delivered() == 2

    def test_drain_with_limit(self, pipeline):
        channel, sales, _ = pipeline
        for i in range(5):
            sales.insert("Sale", [(f"item{i}", "Mary")])
        assert len(channel.drain(limit=2)) == 2
        assert channel.pending() == 3


class TestComplementIntegrator:
    def test_tracks_sources_through_stream(self, catalog, pipeline):
        channel, sales, company = pipeline
        integrator = ComplementIntegrator(
            catalog, [View("Sold", parse("Sale join Emp"))]
        )
        integrator.initialize([sales, company])

        sales.insert("Sale", [("Radio", "Paula")])
        company.insert("Emp", [("Zoe", 40)])
        sales.insert("Sale", [("Mixer", "Zoe")])
        company.delete("Emp", [("John", 25)])
        # Note: John's sale (PC, John) now dangles; Sold must drop it.
        assert integrator.process_all(channel) == 4

        expected = sales.relation("Sale").natural_join(company.relation("Emp"))
        assert integrator.relation("Sold") == expected
        assert integrator.warehouse.reconstruct("Sale") == sales.relation("Sale")
        assert integrator.warehouse.reconstruct("Emp") == company.relation("Emp")

    def test_correct_under_lag(self, catalog, pipeline):
        channel, sales, company = pipeline
        integrator = ComplementIntegrator(
            catalog, [View("Sold", parse("Sale join Emp"))]
        )
        integrator.initialize([sales, company])
        # Publish many updates before the integrator wakes up at all.
        sales.insert("Sale", [("Radio", "Paula")])
        company.delete("Emp", [("Paula", 32)])
        company.insert("Emp", [("Paula", 33)])
        sales.delete("Sale", [("TV", "Mary")])
        integrator.process_all(channel)
        expected = sales.relation("Sale").natural_join(company.relation("Emp"))
        assert integrator.relation("Sold") == expected


class TestNaiveIntegrator:
    def test_correct_when_tightly_coupled(self, catalog, pipeline):
        channel, sales, company = pipeline
        integrator = NaiveIntegrator(
            catalog, [View("Sold", parse("Sale join Emp"))], [sales, company]
        )
        integrator.initialize()
        # Zero lag: process each notification immediately after publication.
        for action in (
            lambda: sales.insert("Sale", [("Radio", "Paula")]),
            lambda: company.insert("Emp", [("Zoe", 40)]),
            lambda: sales.insert("Sale", [("Mixer", "Zoe")]),
            lambda: company.delete("Emp", [("Zoe", 40)]),
        ):
            action()
            integrator.process_all(channel)
        expected = sales.relation("Sale").natural_join(company.relation("Emp"))
        assert integrator.relation("Sold") == expected

    def test_uninitialized_rejected(self, catalog, pipeline):
        from repro import WarehouseError

        channel, sales, company = pipeline
        integrator = NaiveIntegrator(catalog, [], [sales, company])
        sales.insert("Sale", [("Radio", "Paula")])
        with pytest.raises(WarehouseError):
            integrator.process(channel.poll())
