"""Unit tests for :mod:`repro.integrator` (sources, channels, integrators)."""

from __future__ import annotations

import pytest

from repro import Catalog, SchemaError, Update, View, parse
from repro.integrator import Channel, ComplementIntegrator, NaiveIntegrator, Source


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    return catalog


@pytest.fixture
def pipeline(catalog):
    """Figure 1: a Sales source, a Company source, one channel."""
    channel = Channel()
    sales = Source("SalesDB", catalog, ("Sale",), channel)
    company = Source("CompanyDB", catalog, ("Emp",), channel)
    sales.load("Sale", [("TV", "Mary"), ("PC", "John")])
    company.load("Emp", [("Mary", 23), ("John", 25), ("Paula", 32)])
    return channel, sales, company


class TestSource:
    def test_ownership_enforced(self, catalog):
        source = Source("SalesDB", catalog, ("Sale",))
        with pytest.raises(SchemaError):
            source.insert("Emp", [("Zoe", 40)])
        with pytest.raises(SchemaError):
            source.relation("Emp")

    def test_unknown_relation_rejected(self, catalog):
        with pytest.raises(SchemaError):
            Source("S", catalog, ("Ghost",))

    def test_local_constraints_enforced(self, catalog):
        source = Source("CompanyDB", catalog, ("Emp",))
        source.load("Emp", [("Mary", 23)])
        from repro import ConstraintViolation

        with pytest.raises(ConstraintViolation):
            source.insert("Emp", [("Mary", 99)])  # key violation

    def test_cross_source_constraints_not_local(self):
        catalog = Catalog()
        catalog.relation("Sale", ("item", "clerk"))
        catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
        catalog.inclusion("Sale", ("clerk",), "Emp")
        # The Sales source cannot see Emp, so the IND is not checked there
        # (source autonomy); the insert goes through locally.
        source = Source("SalesDB", catalog, ("Sale",))
        source.insert("Sale", [("TV", "Ghost")])
        assert ("TV", "Ghost") in source.relation("Sale")

    def test_updates_published(self, pipeline):
        channel, sales, _ = pipeline
        sales.insert("Sale", [("Radio", "Paula")])
        assert channel.pending() == 1

    def test_noop_updates_not_published(self, pipeline):
        channel, sales, _ = pipeline
        sales.insert("Sale", [("TV", "Mary")])  # already present
        assert channel.pending() == 0

    def test_load_not_published(self, pipeline):
        channel, _, _ = pipeline
        assert channel.pending() == 0


class TestChannel:
    def test_fifo_order_and_sequence(self, pipeline):
        channel, sales, company = pipeline
        sales.insert("Sale", [("Radio", "Paula")])
        company.insert("Emp", [("Zoe", 40)])
        first = channel.poll()
        second = channel.poll()
        assert first.source == "SalesDB" and second.source == "CompanyDB"
        assert first.sequence < second.sequence
        assert channel.poll() is None
        assert channel.delivered() == 2

    def test_drain_with_limit(self, pipeline):
        channel, sales, _ = pipeline
        for i in range(5):
            sales.insert("Sale", [(f"item{i}", "Mary")])
        assert len(channel.drain(limit=2)) == 2
        assert channel.pending() == 3

    def test_drain_rejects_negative_limit(self, pipeline):
        from repro import WarehouseError

        channel, _, _ = pipeline
        with pytest.raises(WarehouseError, match="non-negative"):
            channel.drain(limit=-1)
        assert channel.pending() == 0  # nothing was consumed

    def test_drain_snapshots_pending_count(self, pipeline):
        """Publishing while draining must not extend the drain itself."""
        channel, sales, _ = pipeline
        sales.insert("Sale", [("Radio", "Paula")])
        drained = []
        for notification in channel:
            drained.append(notification)
            # A publish-during-drain feedback loop: without snapshotting,
            # this iteration would never terminate.
            if len(drained) < 3:
                sales.insert("Sale", [(f"chain{len(drained)}", "Mary")])
        assert len(drained) == 1
        assert channel.pending() == 1  # the mid-drain publish is still queued


class TestComplementIntegrator:
    def test_tracks_sources_through_stream(self, catalog, pipeline):
        channel, sales, company = pipeline
        integrator = ComplementIntegrator(
            catalog, [View("Sold", parse("Sale join Emp"))]
        )
        integrator.initialize([sales, company])

        sales.insert("Sale", [("Radio", "Paula")])
        company.insert("Emp", [("Zoe", 40)])
        sales.insert("Sale", [("Mixer", "Zoe")])
        company.delete("Emp", [("John", 25)])
        # Note: John's sale (PC, John) now dangles; Sold must drop it.
        assert integrator.process_all(channel) == 4

        expected = sales.relation("Sale").natural_join(company.relation("Emp"))
        assert integrator.relation("Sold") == expected
        assert integrator.warehouse.reconstruct("Sale") == sales.relation("Sale")
        assert integrator.warehouse.reconstruct("Emp") == company.relation("Emp")

    def test_empty_batch_records_no_metrics(self, catalog, pipeline):
        channel, sales, company = pipeline
        integrator = ComplementIntegrator(
            catalog, [View("Sold", parse("Sale join Emp"))]
        )
        integrator.initialize([sales, company])
        assert integrator.process_batch([]) == 0
        metrics = integrator.metrics
        assert metrics.value("integrator.batches") == 0
        assert metrics.value("integrator.notifications") == 0
        histogram = metrics.get("integrator.batch_size")
        assert histogram is None or histogram.count == 0
        # Warehouse.apply_batch on an empty iterable is equally silent.
        assert integrator.warehouse.apply_batch([]) == {}
        batch_size = metrics.get("warehouse.batch_size")
        assert batch_size is None or batch_size.count == 0

    def test_nonempty_batch_still_counts(self, catalog, pipeline):
        channel, sales, company = pipeline
        integrator = ComplementIntegrator(
            catalog, [View("Sold", parse("Sale join Emp"))]
        )
        integrator.initialize([sales, company])
        sales.insert("Sale", [("Radio", "Paula")])
        company.insert("Emp", [("Zoe", 40)])
        assert integrator.process_all(channel, batch_size=2) == 2
        assert integrator.metrics.value("integrator.batches") == 1
        assert integrator.metrics.get("integrator.batch_size").count == 1

    def test_correct_under_lag(self, catalog, pipeline):
        channel, sales, company = pipeline
        integrator = ComplementIntegrator(
            catalog, [View("Sold", parse("Sale join Emp"))]
        )
        integrator.initialize([sales, company])
        # Publish many updates before the integrator wakes up at all.
        sales.insert("Sale", [("Radio", "Paula")])
        company.delete("Emp", [("Paula", 32)])
        company.insert("Emp", [("Paula", 33)])
        sales.delete("Sale", [("TV", "Mary")])
        integrator.process_all(channel)
        expected = sales.relation("Sale").natural_join(company.relation("Emp"))
        assert integrator.relation("Sold") == expected


class TestNaiveIntegrator:
    def test_correct_when_tightly_coupled(self, catalog, pipeline):
        channel, sales, company = pipeline
        integrator = NaiveIntegrator(
            catalog, [View("Sold", parse("Sale join Emp"))], [sales, company]
        )
        integrator.initialize()
        # Zero lag: process each notification immediately after publication.
        for action in (
            lambda: sales.insert("Sale", [("Radio", "Paula")]),
            lambda: company.insert("Emp", [("Zoe", 40)]),
            lambda: sales.insert("Sale", [("Mixer", "Zoe")]),
            lambda: company.delete("Emp", [("Zoe", 40)]),
        ):
            action()
            integrator.process_all(channel)
        expected = sales.relation("Sale").natural_join(company.relation("Emp"))
        assert integrator.relation("Sold") == expected

    def test_uninitialized_rejected(self, catalog, pipeline):
        from repro import WarehouseError

        channel, sales, company = pipeline
        integrator = NaiveIntegrator(catalog, [], [sales, company])
        sales.insert("Sale", [("Radio", "Paula")])
        with pytest.raises(WarehouseError):
            integrator.process(channel.poll())

    def test_unowned_relation_gets_descriptive_error(self, catalog, pipeline):
        """A notification over a relation no source owns must not surface
        as a bare ``KeyError`` from the live-state lookup."""
        from repro import WarehouseError

        channel, sales, company = pipeline
        # Only the Sales source is configured: Emp updates are orphans.
        integrator = NaiveIntegrator(catalog, [], [sales])
        integrator.initialize()
        company.insert("Emp", [("Zoe", 40)])
        notification = channel.poll()
        with pytest.raises(WarehouseError, match="no configured source owns"):
            integrator.process(notification)
