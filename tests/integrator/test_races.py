"""The ``REPRO_CHECK_RACES=1`` runtime race sanitizer, end to end.

The sanitizer cross-checks the live refresh protocol against the static
claims of the shard-independence prover: ascending lock order (W0102's
dynamic twin), no overlapping uncommitted refreshes, and actual writes
inside the static footprint. The key regression here: a deliberately
*broken* integrator — locks acquired in descending order — runs silently
without the sanitizer and fails loudly with it.

The environment variable is read once per warehouse construction, so every
test monkeypatches it *before* building the pipeline.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import Catalog, Relation, Update, View, WarehouseError, parse
from repro.analysis.races import RaceTracker, races_enabled
from repro.core.sharding import ShardedWarehouse, ShardRouting
from repro.integrator import AsyncChannel, AsyncConcurrentIntegrator, AsyncSource


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    return catalog


VIEWS = [View("Sold", parse("Sale join Emp"))]
ROUTINGS = [ShardRouting("Sale", "item", shards=3)]

INIT = {
    "Sale": Relation(("item", "clerk"), [("TV", "Mary"), ("Car", "Ann")]),
    "Emp": Relation(("clerk", "age"), [("Mary", 23), ("Ann", 31)]),
}


def enable_races(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK_RACES", "1")
    assert races_enabled()


class BackwardLockIntegrator(AsyncConcurrentIntegrator):
    """A deliberately broken worker: shard locks taken in descending order."""

    async def process_batch(self, notifications):
        notifications = list(notifications)
        net = None
        for notification in notifications:
            net = (
                notification.update
                if net is None
                else net.compose(notification.update)
            )
        parts = self.warehouse.split(net)
        indices = sorted(parts, reverse=True)  # the bug under test
        locks = self._shard_locks()
        tracker = self.warehouse.race_tracker
        for index in indices:
            await locks[index].acquire()
            if tracker is not None:
                tracker.note_acquire(index)
        try:
            for index in indices:
                self.warehouse.apply_to_shard(index, parts[index])
            self.warehouse.commit(indices, net)
        finally:
            for index in indices:
                locks[index].release()
                if tracker is not None:
                    tracker.note_release(index)
        return len(notifications)


def multi_shard_update():
    # 'TV' and 'Car' route to different shards of the 3-way hash layout.
    return Update.insert(
        "Sale", ("item", "clerk"), [("TV", "Ann"), ("Car", "Mary")]
    )


def make_integrator(catalog, cls=AsyncConcurrentIntegrator):
    integrator = cls(catalog, VIEWS, routings=ROUTINGS)
    source = AsyncSource(
        "SalesDB", catalog, ("Sale",), channel=AsyncChannel("SalesDB")
    )
    source.load("Sale", INIT["Sale"].rows)
    emp_source = AsyncSource(
        "CompanyDB", catalog, ("Emp",), channel=AsyncChannel("CompanyDB")
    )
    emp_source.load("Emp", INIT["Emp"].rows)
    integrator.initialize([source, emp_source])
    return integrator, source


class TestTrackerWiring:
    def test_tracker_absent_by_default(self, catalog, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK_RACES", raising=False)
        warehouse = ShardedWarehouse.specify(catalog, VIEWS, routings=ROUTINGS)
        assert warehouse.race_tracker is None

    def test_zero_counts_as_disabled(self, catalog, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_RACES", "0")
        warehouse = ShardedWarehouse.specify(catalog, VIEWS, routings=ROUTINGS)
        assert warehouse.race_tracker is None

    def test_tracker_present_when_enabled(self, catalog, monkeypatch):
        enable_races(monkeypatch)
        warehouse = ShardedWarehouse.specify(catalog, VIEWS, routings=ROUTINGS)
        assert warehouse.race_tracker is not None


class TestLockOrder:
    def test_unsorted_lock_acquisition_is_caught(self, catalog, monkeypatch):
        enable_races(monkeypatch)
        integrator, source = make_integrator(catalog, BackwardLockIntegrator)

        async def scenario():
            await source.apply_async(multi_shard_update())
            for notification in source.channel.drain():
                await integrator.process(notification)

        with pytest.raises(WarehouseError, match="ascending order"):
            asyncio.run(scenario())

    def test_broken_integrator_passes_silently_without_sanitizer(
        self, catalog, monkeypatch
    ):
        # The point of the sanitizer: without it, the descending-order bug
        # only matters under contention, so a single-worker run never trips.
        monkeypatch.delenv("REPRO_CHECK_RACES", raising=False)
        integrator, source = make_integrator(catalog, BackwardLockIntegrator)

        async def scenario():
            await source.apply_async(multi_shard_update())
            for notification in source.channel.drain():
                await integrator.process(notification)

        asyncio.run(scenario())

    def test_correct_integrator_runs_clean_under_sanitizer(
        self, catalog, monkeypatch
    ):
        enable_races(monkeypatch)
        integrator, source = make_integrator(catalog)

        async def scenario():
            await source.apply_async(multi_shard_update())
            await source.delete_async("Sale", [("TV", "Ann")])
            source.channel.close()
            integrator._channels["CompanyDB"].close()
            await integrator.run()

        asyncio.run(scenario())
        assert integrator.processed == 2


class TestRefreshOverlap:
    def test_overlapping_uncommitted_refreshes_are_caught(self):
        tracker = RaceTracker(2)

        async def first_worker():
            tracker.begin_refresh(0, frozenset({"Sold"}))
            await asyncio.sleep(0.01)

        async def second_worker():
            await asyncio.sleep(0.001)
            tracker.begin_refresh(0, frozenset({"Sold"}))

        async def scenario():
            await asyncio.gather(first_worker(), second_worker())

        with pytest.raises(WarehouseError, match="uncommitted refresh"):
            asyncio.run(scenario())

    def test_same_worker_may_refresh_twice_before_commit(self):
        tracker = RaceTracker(2)
        tracker.begin_refresh(0, frozenset({"Sold"}))
        tracker.begin_refresh(0, frozenset({"C_Sale"}))
        tracker.end_commit([0])
        tracker.begin_refresh(0, frozenset({"Sold"}))

    def test_commit_closes_the_window_for_other_workers(self):
        tracker = RaceTracker(2)

        async def first_worker():
            tracker.begin_refresh(1, frozenset({"Sold"}))
            tracker.end_commit([1])

        async def second_worker():
            await asyncio.sleep(0)
            tracker.begin_refresh(1, frozenset({"Sold"}))
            tracker.end_commit([1])

        async def scenario():
            await asyncio.gather(first_worker(), second_worker())

        asyncio.run(scenario())


class TestWriteFootprints:
    def test_write_outside_static_footprint_is_caught(self):
        tracker = RaceTracker(2)
        with pytest.raises(WarehouseError, match="outside the static write"):
            tracker.check_written(0, frozenset({"Sold"}), ["Sold", "C_Emp"])

    def test_write_inside_footprint_passes(self):
        tracker = RaceTracker(2)
        tracker.check_written(0, frozenset({"Sold", "C_Emp"}), ["Sold"])

    def test_real_refreshes_stay_inside_their_footprints(
        self, catalog, monkeypatch
    ):
        # End to end: apply_to_shard runs begin_refresh + check_written on
        # every real refresh; a full insert/delete mix must pass.
        enable_races(monkeypatch)
        warehouse = ShardedWarehouse.specify(catalog, VIEWS, routings=ROUTINGS)
        warehouse.initialize(INIT)
        warehouse.apply(multi_shard_update())
        warehouse.apply(Update.delete("Sale", ("item", "clerk"), [("TV", "Ann")]))
        warehouse.apply(
            Update.insert("Emp", ("clerk", "age"), [("Zoe", 28)])
        )
        assert warehouse.race_tracker is not None


class TestLockOrderUnit:
    def test_ascending_acquisition_passes(self):
        tracker = RaceTracker(3)
        tracker.note_acquire(0)
        tracker.note_acquire(2)
        tracker.note_release(0)
        tracker.note_release(2)

    def test_descending_acquisition_fails(self):
        tracker = RaceTracker(3)
        tracker.note_acquire(2)
        with pytest.raises(WarehouseError, match="ascending order"):
            tracker.note_acquire(0)

    def test_reacquiring_the_same_shard_fails(self):
        tracker = RaceTracker(3)
        tracker.note_acquire(1)
        with pytest.raises(WarehouseError, match="ascending order"):
            tracker.note_acquire(1)

    def test_release_resets_the_order_constraint(self):
        tracker = RaceTracker(3)
        tracker.note_acquire(2)
        tracker.note_release(2)
        tracker.note_acquire(0)
