"""The concurrency correctness harness for the async integrator.

The gate this suite enforces (ROADMAP item 3): the complement-based
integrator must stay anomaly-free under adversarial interleavings, injected
delivery lag, and shard-concurrent refresh. Every scenario cross-checks the
async pipeline against the differential oracle — replaying the sharded
warehouse's commit log through a synchronous reference warehouse and
comparing states version by version — while the naive integrator, fed the
same schedules, still diverges exactly as Section 1 predicts.

All tests drive the event loop with ``asyncio.run`` directly (no plugin
dependency); asyncio's deterministic cooperative scheduling makes the
interleavings reproducible.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Tuple

import pytest

from repro import Catalog, Relation, Update, View, WarehouseError, parse
from repro.algebra.evaluator import evaluate
from repro.core.complement import specify
from repro.core.sharding import ShardRouting
from repro.core.warehouse import Warehouse
from repro.integrator import (
    AsyncChannel,
    AsyncConcurrentIntegrator,
    AsyncSource,
    Channel,
    NaiveIntegrator,
    Source,
)


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    return catalog


VIEWS = [View("Sold", parse("Sale join Emp"))]
SALE_ROWS = [("TV", "Mary")]
EMP_ROWS = [("Mary", 23), ("Ann", 31)]


def make_async_pipeline(catalog, delay_sales=0.0, delay_company=0.0, capacity=0):
    sales = AsyncSource(
        "SalesDB",
        catalog,
        ("Sale",),
        channel=AsyncChannel("SalesDB", capacity=capacity),
        delay=delay_sales,
    )
    company = AsyncSource(
        "CompanyDB",
        catalog,
        ("Emp",),
        channel=AsyncChannel("CompanyDB", capacity=capacity),
        delay=delay_company,
    )
    sales.load("Sale", SALE_ROWS)
    company.load("Emp", EMP_ROWS)
    return sales, company


def reference_replay(catalog, commit_log) -> Dict[int, Dict[str, Relation]]:
    """The differential oracle: states by version from a sync replay."""
    reference = Warehouse(specify(catalog, VIEWS))
    reference.initialize(
        {
            "Sale": Relation(("item", "clerk"), SALE_ROWS),
            "Emp": Relation(("clerk", "age"), EMP_ROWS),
        }
    )
    states = {1: dict(reference.state)}  # version 1 = the initial extract
    for record in commit_log:
        reference.apply(record.update)
        states[record.version] = dict(reference.state)
    return states


class TestAsyncChannel:
    def test_sync_publish_poll_roundtrip(self):
        channel = AsyncChannel("s")
        update = Update.insert("R", ("x",), [(1,)])
        notification = channel.publish("s", update)
        assert notification.sequence == 1
        assert channel.pending() == 1
        assert channel.poll() is notification
        assert channel.poll() is None
        assert channel.delivered() == 1

    def test_bounded_publish_fails_fast(self):
        channel = AsyncChannel("s", capacity=1)
        channel.publish("s", Update.insert("R", ("x",), [(1,)]))
        with pytest.raises(WarehouseError, match="full"):
            channel.publish("s", Update.insert("R", ("x",), [(2,)]))

    def test_negative_capacity_rejected(self):
        with pytest.raises(WarehouseError):
            AsyncChannel("s", capacity=-1)

    def test_drain_validates_limit_and_snapshots(self):
        channel = AsyncChannel("s")
        for k in range(3):
            channel.publish("s", Update.insert("R", ("x",), [(k,)]))
        with pytest.raises(WarehouseError, match="non-negative"):
            channel.drain(limit=-1)
        assert len(channel.drain(limit=2)) == 2
        assert channel.pending() == 1

    def test_send_backpressure_suspends_until_drained(self):
        async def scenario():
            channel = AsyncChannel("s", capacity=2)
            sent: List[int] = []

            async def producer():
                for k in range(6):
                    await channel.send("s", Update.insert("R", ("x",), [(k,)]))
                    sent.append(k)
                channel.close()

            async def consumer():
                got = []
                while True:
                    # Give the producer every chance to run ahead first.
                    for _ in range(3):
                        await asyncio.sleep(0)
                    notification = await channel.get()
                    if notification is None:
                        return got
                    assert channel.pending() <= 2  # the bound held throughout
                    got.append(notification)

            got, _ = await asyncio.gather(consumer(), producer())
            assert len(got) == 6
            assert [n.sequence for n in got] == sorted(n.sequence for n in got)
            assert channel.backpressure_waits > 0

        asyncio.run(scenario())

    def test_close_ends_async_iteration_after_drain(self):
        async def scenario():
            channel = AsyncChannel("s")
            channel.publish("s", Update.insert("R", ("x",), [(1,)]))
            channel.close()
            with pytest.raises(WarehouseError, match="closed"):
                channel.publish("s", Update.insert("R", ("x",), [(2,)]))
            seen = [notification async for notification in channel]
            assert len(seen) == 1
            assert await channel.get() is None

        asyncio.run(scenario())

    def test_next_batch_folds_everything_pending(self):
        async def scenario():
            channel = AsyncChannel("s")
            for k in range(5):
                channel.publish("s", Update.insert("R", ("x",), [(k,)]))
            batch = await channel.next_batch()
            assert len(batch) == 5
            channel.publish("s", Update.insert("R", ("x",), [(9,)]))
            limited = await channel.next_batch(limit=1)
            assert len(limited) == 1
            channel.close()
            assert await channel.next_batch() is None

        asyncio.run(scenario())


class TestAsyncSource:
    def test_async_mutators_report_after_delay(self, catalog):
        async def scenario():
            sales, _ = make_async_pipeline(catalog, delay_sales=0.001)
            await sales.insert_async("Sale", [("Amp", "Ann")])
            # The local database moved *before* the notification delivered.
            assert ("Amp", "Ann") in sales.relation("Sale")
            assert sales.channel.pending() == 1

        asyncio.run(scenario())

    def test_noop_async_updates_not_published(self, catalog):
        async def scenario():
            sales, _ = make_async_pipeline(catalog)
            await sales.insert_async("Sale", SALE_ROWS)  # already present
            assert sales.channel.pending() == 0

        asyncio.run(scenario())

    def test_sync_source_api_still_works(self, catalog):
        sales, _ = make_async_pipeline(catalog)
        sales.insert("Sale", [("Amp", "Ann")])
        assert sales.channel.pending() == 1

    def test_negative_delay_rejected(self, catalog):
        with pytest.raises(WarehouseError):
            AsyncSource("S", catalog, ("Sale",), delay=-0.5)


class TestConcurrentIntegrator:
    def test_requires_async_channels_and_sources(self, catalog):
        integrator = AsyncConcurrentIntegrator(catalog, VIEWS, shards=2)
        sync_source = Source("S", catalog, ("Sale",), Channel())
        with pytest.raises(WarehouseError, match="AsyncChannel"):
            integrator.attach(sync_source)
        with pytest.raises(WarehouseError, match="no sources"):
            asyncio.run(integrator.run())

    def test_burst_folds_into_one_net_batch(self, catalog):
        async def scenario():
            sales, company = make_async_pipeline(catalog)
            integrator = AsyncConcurrentIntegrator(
                catalog,
                VIEWS,
                routings=[ShardRouting("Sale", "item", boundaries=["M"])],
            )
            integrator.initialize([sales, company])
            # Publish a burst before the integrator wakes: everything
            # pending folds into a single composed refresh.
            for k in range(4):
                sales.insert("Sale", [(f"item{k}", "Mary")])
            company.channel.close()
            sales.channel.close()
            processed = await integrator.run()
            assert processed == 4
            histogram = integrator.metrics.get("integrator.batch_size")
            assert histogram.maximum == 4
            assert integrator.metrics.value("integrator.batches") == 1
            return integrator

        integrator = asyncio.run(scenario())
        assert integrator.relation("Sold").rows == frozenset(
            {(f"item{k}", "Mary", 23) for k in range(4)} | {("TV", "Mary", 23)}
        )

    def test_lagged_sources_sharded_refresh_matches_live_state(self, catalog):
        """The headline gate: 2 shards, injected lag, concurrent sources."""

        async def scenario():
            sales, company = make_async_pipeline(
                catalog, delay_sales=0.001, delay_company=0.002, capacity=3
            )
            integrator = AsyncConcurrentIntegrator(
                catalog,
                VIEWS,
                routings=[ShardRouting("Sale", "item", boundaries=["M"])],
            )
            integrator.initialize([sales, company])

            async def sales_script():
                for k in range(12):
                    await sales.insert_async(
                        "Sale", [(f"i{k:02d}", "Mary" if k % 2 else "Ann")]
                    )
                await sales.delete_async("Sale", [("TV", "Mary")])
                sales.channel.close()

            async def company_script():
                await company.insert_async("Emp", [("Zoe", 40)])
                await company.delete_async("Emp", [("Ann", 31)])
                await company.insert_async("Emp", [("Ann", 32)])
                company.channel.close()

            await asyncio.gather(
                sales_script(), company_script(), integrator.run()
            )
            return sales, company, integrator

        sales, company, integrator = asyncio.run(scenario())
        live = {
            "Sale": sales.relation("Sale"),
            "Emp": company.relation("Emp"),
        }
        # Despite lag and interleaved shard refreshes, the assembled
        # warehouse equals direct evaluation over the final source state...
        assert integrator.relation("Sold") == evaluate(
            VIEWS[0].definition, live
        )
        for base in ("Sale", "Emp"):
            assert integrator.warehouse.reconstruct(base) == live[base]
        # ...and the commit log replays to the same final state.
        states = reference_replay(catalog, integrator.warehouse.commit_log)
        final_version = integrator.warehouse.version
        assert states[final_version] == integrator.warehouse.state()
        assert integrator.metrics.get(
            "integrator.delivery_lag_seconds"
        ).count == integrator.processed

    def test_concurrent_readers_never_see_torn_batches(self, catalog):
        """Readers sample snapshots mid-run; every image must equal the
        differential oracle's state at that exact version."""

        async def scenario():
            sales, company = make_async_pipeline(catalog, delay_sales=0.001)
            integrator = AsyncConcurrentIntegrator(
                catalog,
                VIEWS,
                routings=[ShardRouting("Sale", "item", boundaries=["D", "S"])],
            )
            integrator.initialize([sales, company])
            observed: List[Tuple[int, Dict[str, Relation]]] = []
            done = asyncio.Event()

            async def reader():
                while not done.is_set():
                    snapshot = integrator.snapshot()
                    # Assembling reads every shard image — if a commit were
                    # torn, this is where it would show.
                    observed.append((snapshot.version, snapshot.state()))
                    await asyncio.sleep(0)

            async def sales_script():
                for k in range(10):
                    await sales.insert_async("Sale", [(f"i{k}", "Mary")])
                    if k % 3 == 0:
                        await sales.delete_async("Sale", [(f"i{k}", "Mary")])
                sales.channel.close()

            async def company_script():
                for name, age in (("Zoe", 40), ("Ann", 31), ("Bob", 44)):
                    await company.delete_async("Emp", [(name, age)])
                    await company.insert_async("Emp", [(name, age + 1)])
                company.channel.close()

            async def drive():
                await asyncio.gather(
                    sales_script(), company_script(), integrator.run()
                )
                done.set()

            await asyncio.gather(drive(), reader())
            return integrator, observed

        integrator, observed = asyncio.run(scenario())
        assert observed, "reader never sampled a snapshot"
        states = reference_replay(catalog, integrator.warehouse.commit_log)
        for version, image in observed:
            assert image == states[version], (
                f"snapshot at version {version} does not match the "
                "differential oracle's replayed state"
            )

    def test_adversarial_phantom_schedule_complement_vs_naive(self, catalog):
        """The permanent-phantom interleaving, concurrent edition.

        Sources race ahead of delivery (lag), the complement integrator
        folds late batches into a 2-shard warehouse — and stays exact.
        The naive integrator processing the identical notification stream
        against live sources keeps the phantom forever.
        """

        def ops(sales_op, company_op):
            return [
                lambda: sales_op("insert", [("TV", "Zoe")]),
                lambda: company_op("insert", [("Zoe", 40)]),
                lambda: sales_op("delete", [("TV", "Zoe")]),
                lambda: company_op("delete", [("Zoe", 40)]),
            ]

        async def complement_run():
            sales = AsyncSource(
                "SalesDB", catalog, ("Sale",),
                channel=AsyncChannel("SalesDB"), delay=0.001,
            )
            company = AsyncSource(
                "CompanyDB", catalog, ("Emp",),
                channel=AsyncChannel("CompanyDB"), delay=0.001,
            )
            sales.load("Sale", [])
            company.load("Emp", [])
            integrator = AsyncConcurrentIntegrator(
                catalog, VIEWS, routings=[ShardRouting("Sale", "item", shards=2)]
            )
            integrator.initialize([sales, company])

            def sales_op(kind, rows):
                method = (
                    sales.insert_async if kind == "insert" else sales.delete_async
                )
                return method("Sale", rows)

            def company_op(kind, rows):
                method = (
                    company.insert_async
                    if kind == "insert"
                    else company.delete_async
                )
                return method("Emp", rows)

            async def script():
                for op in ops(sales_op, company_op):
                    await op()
                sales.channel.close()
                company.channel.close()

            await asyncio.gather(script(), integrator.run())
            return integrator

        integrator = asyncio.run(complement_run())
        # Correct final Sold is empty; the complement integrator gets there.
        assert integrator.relation("Sold").rows == frozenset()

        # Same four ops, same "publish now, process later" schedule, naive
        # integrator: the phantom join partner is never un-joined.
        channel = Channel()
        sales = Source("SalesDB", catalog, ("Sale",), channel)
        company = Source("CompanyDB", catalog, ("Emp",), channel)
        sales.load("Sale", [])
        company.load("Emp", [])
        naive = NaiveIntegrator(catalog, VIEWS, [sales, company])
        naive.initialize()
        sales.insert("Sale", [("TV", "Zoe")])
        company.insert("Emp", [("Zoe", 40)])
        naive.process_all(channel)  # lag: both already applied at sources
        sales.delete("Sale", [("TV", "Zoe")])
        company.delete("Emp", [("Zoe", 40)])
        naive.process_all(channel)
        assert ("TV", "Zoe", 40) in naive.relation("Sold")  # diverged


class TestInterleavingSweep:
    """Vary producer pacing to explore many interleavings deterministically.

    asyncio scheduling is a pure function of the program, so each pacing
    pattern is one reproducible adversarial schedule; across patterns the
    workers' lock acquisition, mid-batch suspension points, and commits
    interleave differently. Every schedule must replay exactly.
    """

    @pytest.mark.parametrize("pacing", [(0, 0), (1, 0), (0, 2), (3, 1)])
    def test_every_schedule_replays_exactly(self, catalog, pacing):
        sales_yields, company_yields = pacing

        async def scenario():
            sales, company = make_async_pipeline(catalog, capacity=2)
            integrator = AsyncConcurrentIntegrator(
                catalog,
                VIEWS,
                routings=[ShardRouting("Sale", "item", boundaries=["M"])],
            )
            integrator.initialize([sales, company])

            async def sales_script():
                for k in range(8):
                    await sales.insert_async("Sale", [(f"i{k}", "Ann")])
                    for _ in range(sales_yields):
                        await asyncio.sleep(0)
                await sales.delete_async("Sale", [("i3", "Ann")])
                sales.channel.close()

            async def company_script():
                await company.insert_async("Emp", [("Zoe", 40)])
                for _ in range(company_yields):
                    await asyncio.sleep(0)
                await company.delete_async("Emp", [("Zoe", 40)])
                company.channel.close()

            await asyncio.gather(
                sales_script(), company_script(), integrator.run()
            )
            return sales, company, integrator

        sales, company, integrator = asyncio.run(scenario())
        live = {
            "Sale": sales.relation("Sale"),
            "Emp": company.relation("Emp"),
        }
        assert integrator.relation("Sold") == evaluate(VIEWS[0].definition, live)
        states = reference_replay(catalog, integrator.warehouse.commit_log)
        assert states[integrator.warehouse.version] == integrator.warehouse.state()


class TestCoPartitionedConcurrent:
    """E16 oracle gate for the co-partitioning admission.

    Two routed relations joined on their shared routing attribute — the
    layout PR 8 rejected and the sharding prover now admits — driven by two
    concurrent lagged sources. The commit-log replay oracle must hold: every
    published version equals a synchronous unsharded warehouse fed the same
    net batches in serialization order.
    """

    def fact_catalog(self):
        catalog = Catalog()
        catalog.relation("Orders", ("okey", "item"), key=("okey",))
        catalog.relation("Shipments", ("okey", "carrier"), key=("okey",))
        return catalog

    def test_commit_log_replay_oracle(self):
        catalog = self.fact_catalog()
        views = [View("Fulfilled", parse("Orders join Shipments"))]
        init_orders = [(1, "TV"), (2, "Car"), (5, "Amp")]
        init_shipments = [(1, "UPS"), (5, "DHL")]

        async def scenario():
            orders = AsyncSource(
                "OrdersDB",
                catalog,
                ("Orders",),
                channel=AsyncChannel("OrdersDB", capacity=2),
                delay=0.001,
            )
            shipments = AsyncSource(
                "ShipmentsDB",
                catalog,
                ("Shipments",),
                channel=AsyncChannel("ShipmentsDB", capacity=2),
                delay=0.002,
            )
            orders.load("Orders", init_orders)
            shipments.load("Shipments", init_shipments)
            integrator = AsyncConcurrentIntegrator(
                catalog,
                views,
                routings=[
                    ShardRouting("Orders", "okey", shards=2),
                    ShardRouting("Shipments", "okey", shards=2),
                ],
            )
            integrator.initialize([orders, shipments])

            async def orders_script():
                for k in range(6, 14):
                    await orders.insert_async("Orders", [(k, f"item{k}")])
                await orders.delete_async("Orders", [(1, "TV")])
                orders.channel.close()

            async def shipments_script():
                for k in (2, 6, 9, 13):
                    await shipments.insert_async("Shipments", [(k, "UPS")])
                await shipments.delete_async("Shipments", [(5, "DHL")])
                shipments.channel.close()

            await asyncio.gather(
                orders_script(), shipments_script(), integrator.run()
            )
            return orders, shipments, integrator

        orders, shipments, integrator = asyncio.run(scenario())
        # The assembled view equals direct evaluation over live sources...
        live = {
            "Orders": orders.relation("Orders"),
            "Shipments": shipments.relation("Shipments"),
        }
        assert integrator.relation("Fulfilled") == evaluate(
            views[0].definition, live
        )
        # ...and every committed version replays through an unsharded
        # reference warehouse (the E16 differential oracle).
        reference = Warehouse(specify(catalog, views))
        reference.initialize(
            {
                "Orders": Relation(("okey", "item"), init_orders),
                "Shipments": Relation(("okey", "carrier"), init_shipments),
            }
        )
        states = {1: dict(reference.state)}
        for record in integrator.warehouse.commit_log:
            reference.apply(record.update)
            states[record.version] = dict(reference.state)
        assert states[integrator.warehouse.version] == integrator.warehouse.state()
