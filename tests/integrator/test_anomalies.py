"""The maintenance anomalies motivating the paper (Section 1, [27, 28]).

A naive integrator that answers "who joins with this new tuple?" by querying
the *live* sources computes against a state that has drifted past the
notification it is processing. These tests reproduce the classical anomaly
scenarios — including an interleaving that leaves a **permanent phantom
tuple** in the naive warehouse — and show by exhaustive schedule enumeration
that the complement-based integrator is immune.
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence

import pytest

from repro import Catalog, ConstraintViolation, View, parse
from repro.integrator import Channel, ComplementIntegrator, NaiveIntegrator, Source


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    return catalog


def make_pipeline(catalog, emp_rows=(("Mary", 23),)):
    channel = Channel()
    sales = Source("SalesDB", catalog, ("Sale",), channel)
    company = Source("CompanyDB", catalog, ("Emp",), channel)
    sales.load("Sale", [])
    company.load("Emp", emp_rows)
    return channel, sales, company


class TestClassicAnomaly:
    def test_naive_sees_phantom_join_partner(self, catalog):
        channel, sales, company = make_pipeline(catalog)
        naive = NaiveIntegrator(
            catalog, [View("Sold", parse("Sale join Emp"))], [sales, company]
        )
        naive.initialize()

        # t1: a sale by Zoe — Zoe is NOT in Emp, so the correct Sold delta
        #     at this point is empty.
        sales.insert("Sale", [("Radio", "Zoe")])
        # t2: before the integrator runs, Zoe is hired.
        company.insert("Emp", [("Zoe", 40)])

        # Processing t1 against the live Emp finds a partner that did not
        # exist at t1: the phantom.
        naive.process(channel.poll())
        assert ("Radio", "Zoe", 40) in naive.relation("Sold")

    def test_permanent_phantom(self, catalog):
        """The interleaving after which the naive warehouse never recovers.

        Ops:  o1 = insert Sale(TV, Zoe); o2 = insert Emp(Zoe, 40);
              o3 = delete Sale(TV, Zoe); o4 = delete Emp(Zoe, 40).
        Correct final Sold: empty. Schedule: o1, o2, process{o1, o2}
        (phantom joined against live Emp), o3, o4, process{o3, o4} — the
        Sale deletion joins against the live Emp, where Zoe is already
        gone, so the phantom is never deleted.
        """
        channel, sales, company = make_pipeline(catalog, emp_rows=())
        naive = NaiveIntegrator(
            catalog, [View("Sold", parse("Sale join Emp"))], [sales, company]
        )
        naive.initialize()

        sales.insert("Sale", [("TV", "Zoe")])
        company.insert("Emp", [("Zoe", 40)])
        naive.process_all(channel)
        assert ("TV", "Zoe", 40) in naive.relation("Sold")  # phantom appears

        sales.delete("Sale", [("TV", "Zoe")])
        company.delete("Emp", [("Zoe", 40)])
        naive.process_all(channel)

        correct = sales.relation("Sale").natural_join(company.relation("Emp"))
        assert not correct
        # The phantom is still there: permanent corruption.
        assert ("TV", "Zoe", 40) in naive.relation("Sold")
        assert naive.relation("Sold") != correct

    def test_complement_integrator_correct_on_same_schedule(self, catalog):
        channel, sales, company = make_pipeline(catalog, emp_rows=())
        integrator = ComplementIntegrator(
            catalog, [View("Sold", parse("Sale join Emp"))]
        )
        integrator.initialize([sales, company])

        sales.insert("Sale", [("TV", "Zoe")])
        company.insert("Emp", [("Zoe", 40)])
        integrator.process_all(channel)
        assert ("TV", "Zoe", 40) in integrator.relation("Sold")

        sales.delete("Sale", [("TV", "Zoe")])
        company.delete("Emp", [("Zoe", 40)])
        integrator.process_all(channel)
        assert integrator.relation("Sold").rows == frozenset()


def anomaly_ops(sales: Source, company: Source) -> List[Callable[[], None]]:
    """The 4-op pattern of the permanent-phantom scenario."""
    return [
        lambda: sales.insert("Sale", [("TV", "Zoe")]),
        lambda: company.insert("Emp", [("Zoe", 40)]),
        lambda: sales.delete("Sale", [("TV", "Zoe")]),
        lambda: company.delete("Emp", [("Zoe", 40)]),
    ]


def enumerate_schedules(n_ops: int, max_pending: int = 4) -> List[Sequence[int]]:
    """All delivery schedules: after op i, process schedule[i] notifications.

    ``-1`` denotes "drain everything pending". The final position always
    drains, so every schedule processes every notification eventually.
    """
    schedules: List[Sequence[int]] = []

    def extend(prefix: List[int]) -> None:
        if len(prefix) == n_ops:
            schedules.append(tuple(prefix))
            return
        for choice in (0, 1, 2, -1):
            extend(prefix + [choice])

    extend([])
    return schedules


class TestExhaustiveSchedules:
    """Every delivery schedule of the anomaly pattern, both integrators."""

    def run(self, catalog, schedule, integrator_kind: str) -> bool:
        channel, sales, company = make_pipeline(catalog, emp_rows=())
        views = [View("Sold", parse("Sale join Emp"))]
        if integrator_kind == "naive":
            integrator = NaiveIntegrator(catalog, views, [sales, company])
            integrator.initialize()
        else:
            integrator = ComplementIntegrator(catalog, views)
            integrator.initialize([sales, company])

        ops = anomaly_ops(sales, company)
        for op, choice in zip(ops, schedule):
            op()
            if choice == -1:
                integrator.process_all(channel)
            else:
                for notification in channel.drain(choice):
                    integrator.process(notification)
        integrator.process_all(channel)
        correct = sales.relation("Sale").natural_join(company.relation("Emp"))
        return integrator.relation("Sold") == correct

    def test_naive_diverges_on_some_schedule(self, catalog):
        results = [
            self.run(catalog, schedule, "naive")
            for schedule in enumerate_schedules(4)
        ]
        assert not all(results), "expected at least one anomalous schedule"
        # Zero-lag (drain after every op) is fine for the naive integrator.
        assert self.run(catalog, (-1, -1, -1, -1), "naive")

    def test_complement_correct_on_every_schedule(self, catalog):
        for schedule in enumerate_schedules(4):
            assert self.run(catalog, schedule, "complement"), schedule


class TestRandomStreams:
    """Long random streams with random lag: complement never deviates."""

    def test_complement_immune(self, catalog):
        rng = random.Random(5)
        for trial in range(8):
            channel, sales, company = make_pipeline(catalog)
            integrator = ComplementIntegrator(
                catalog, [View("Sold", parse("Sale join Emp"))]
            )
            integrator.initialize([sales, company])
            clerks = ["Mary", "Zoe", "Abe"]
            for step in range(12):
                action = rng.random()
                try:
                    if action < 0.4:
                        sales.insert("Sale", [(f"item{step}", rng.choice(clerks))])
                    elif action < 0.6:
                        company.insert(
                            "Emp", [(rng.choice(clerks), rng.randint(20, 60))]
                        )
                    elif action < 0.8 and sales.relation("Sale"):
                        row = sorted(sales.relation("Sale").rows, key=repr)[0]
                        sales.delete("Sale", [row])
                    elif company.relation("Emp"):
                        row = sorted(company.relation("Emp").rows, key=repr)[0]
                        company.delete("Emp", [row])
                except ConstraintViolation:
                    continue  # the autonomous source rejected it locally
                if rng.random() < 0.5:
                    for notification in channel.drain(rng.randint(0, 2)):
                        integrator.process(notification)
            integrator.process_all(channel)
            expected = sales.relation("Sale").natural_join(
                company.relation("Emp")
            )
            assert integrator.relation("Sold") == expected, trial
            assert integrator.warehouse.reconstruct("Sale") == sales.relation(
                "Sale"
            )
