"""Unit tests for :mod:`repro.core.sharding`.

The load-bearing property throughout: a sharded warehouse over any routing
must be *observationally identical* to an unsharded reference warehouse fed
the same updates — assembled state, reconstruction, and query answers.
"""

from __future__ import annotations

import pytest

from repro import Catalog, Relation, Update, View, WarehouseError, parse
from repro.core.complement import specify
from repro.core.sharding import (
    ShardedWarehouse,
    ShardRouter,
    ShardRouting,
)
from repro.core.warehouse import Warehouse


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    return catalog


VIEWS = [View("Sold", parse("Sale join Emp"))]

INIT = {
    "Sale": Relation(("item", "clerk"), [("TV", "Mary"), ("Car", "Ann")]),
    "Emp": Relation(("clerk", "age"), [("Mary", 23), ("Ann", 31), ("Bob", 44)]),
}


def make_pair(catalog, routings):
    """A sharded warehouse and its unsharded reference, both initialized."""
    sharded = ShardedWarehouse.specify(catalog, VIEWS, routings=routings)
    sharded.initialize(INIT)
    reference = Warehouse(specify(catalog, VIEWS))
    reference.initialize(INIT)
    return sharded, reference


def assert_equivalent(sharded, reference):
    assert sharded.state() == reference.state
    for base in ("Sale", "Emp"):
        assert sharded.reconstruct(base) == reference.reconstruct(base)


class TestShardRouting:
    def test_range_strategy(self):
        routing = ShardRouting("Sale", "item", boundaries=["h", "p"])
        assert routing.shards == 3
        assert routing.shard_of("apple") == 0
        assert routing.shard_of("hat") == 1
        assert routing.shard_of("zoo") == 2

    def test_hash_strategy_is_stable_and_total(self):
        routing = ShardRouting("Sale", "item", shards=4)
        for value in ("a", "b", 17, ("x", 1)):
            shard = routing.shard_of(value)
            assert 0 <= shard < 4
            assert routing.shard_of(value) == shard

    def test_exactly_one_strategy_required(self):
        with pytest.raises(WarehouseError):
            ShardRouting("Sale", "item")
        with pytest.raises(WarehouseError):
            ShardRouting("Sale", "item", boundaries=["m"], shards=2)
        with pytest.raises(WarehouseError):
            ShardRouting("Sale", "item", boundaries=[])
        with pytest.raises(WarehouseError):
            ShardRouting("Sale", "item", shards=0)

    def test_range_boundary_value_belongs_to_the_upper_shard(self):
        # Half-open intervals: shard i owns boundaries[i-1] <= v < boundaries[i],
        # so a value exactly on a split point routes to the shard above it.
        routing = ShardRouting("Sale", "item", boundaries=[4, 8])
        assert routing.shard_of(3) == 0
        assert routing.shard_of(4) == 1
        assert routing.shard_of(7) == 1
        assert routing.shard_of(8) == 2

    def test_hash_routes_unhashable_and_odd_values_via_repr(self):
        # crc32-of-repr routing has no trouble with values Python's hash()
        # rejects (lists) or that differ from their str form (None, floats).
        routing = ShardRouting("Sale", "item", shards=4)
        for value in (None, [1, 2], {"k": 1}, 3.5, ""):
            assert 0 <= routing.shard_of(value) < 4
            assert routing.shard_of(value) == routing.shard_of(value)

    def test_hash_routing_of_repr_failing_value_rejected(self):
        class Broken:
            def __repr__(self) -> str:
                raise RuntimeError("no repr for you")

        routing = ShardRouting("Sale", "item", shards=2)
        with pytest.raises(WarehouseError, match="repr\\(\\) failed"):
            routing.shard_of(Broken())

    def test_compatibility_is_the_co_partitioning_predicate(self):
        hash2a = ShardRouting("A", "k", shards=2)
        hash2b = ShardRouting("B", "k", shards=2)
        assert hash2a.compatible_with(hash2b)
        assert not hash2a.compatible_with(ShardRouting("B", "k", shards=3))
        range_a = ShardRouting("A", "k", boundaries=[4])
        assert not hash2a.compatible_with(range_a)
        assert range_a.compatible_with(ShardRouting("B", "k", boundaries=[4]))
        assert not range_a.compatible_with(ShardRouting("B", "k", boundaries=[7]))

    def test_incomparable_range_value_rejected(self):
        routing = ShardRouting("Sale", "item", boundaries=["m"])
        with pytest.raises(WarehouseError, match="not.*comparable"):
            routing.shard_of(None)


class TestShardRouter:
    def test_split_update_routes_and_broadcasts(self):
        router = ShardRouter([ShardRouting("Sale", "item", boundaries=["M"])])
        update = Update.insert(
            "Sale", ("item", "clerk"), [("Amp", "Mary"), ("TV", "Ann")]
        ).compose(Update.insert("Emp", ("clerk", "age"), [("Zoe", 50)]))
        parts = router.split_update(update)
        assert set(parts) == {0, 1}
        # Routed rows split by boundary; the Emp delta reaches both shards.
        sale0 = next(d for d in parts[0] if d.relation == "Sale")
        sale1 = next(d for d in parts[1] if d.relation == "Sale")
        assert sale0.inserts.rows == frozenset({("Amp", "Mary")})
        assert sale1.inserts.rows == frozenset({("TV", "Ann")})
        for part in parts.values():
            emp = next(d for d in part if d.relation == "Emp")
            assert emp.inserts.rows == frozenset({("Zoe", 50)})

    def test_split_update_omits_idle_shards(self):
        router = ShardRouter([ShardRouting("Sale", "item", boundaries=["M"])])
        update = Update.insert("Sale", ("item", "clerk"), [("Amp", "Mary")])
        parts = router.split_update(update)
        assert set(parts) == {0}

    def test_split_state_slices_and_replicates(self):
        router = ShardRouter([ShardRouting("Sale", "item", boundaries=["M"])])
        parts = router.split_state(INIT)
        assert len(parts) == 2
        assert parts[0]["Sale"].rows == frozenset({("Car", "Ann")})
        assert parts[1]["Sale"].rows == frozenset({("TV", "Mary")})
        assert parts[0]["Emp"] is parts[1]["Emp"] is INIT["Emp"]

    def test_duplicate_routing_rejected(self):
        with pytest.raises(WarehouseError, match="more than once"):
            ShardRouter(
                [
                    ShardRouting("Sale", "item", shards=2),
                    ShardRouting("Sale", "clerk", shards=2),
                ]
            )

    def test_inconsistent_shard_counts_rejected(self, catalog):
        catalog.relation("Extra", ("k",))
        with pytest.raises(WarehouseError, match="inconsistent"):
            ShardRouter(
                [
                    ShardRouting("Sale", "item", shards=2),
                    ShardRouting("Extra", "k", shards=3),
                ]
            )

    def test_missing_routing_attribute_rejected(self):
        router = ShardRouter([ShardRouting("Sale", "item", shards=2)])
        with pytest.raises(WarehouseError, match="missing"):
            router.split_relation("Sale", Relation(("clerk",), [("Mary",)]))


class TestAssemblyClassification:
    def test_thm22_complement_modes(self, catalog):
        wh = ShardedWarehouse.specify(
            catalog, VIEWS, routings=[ShardRouting("Sale", "item", shards=2)]
        )
        # The view and the routed relation's complement slice cleanly
        # (union); the complement of the relation joined *against* the
        # routed one has the K − π(…Sale…) shape and flips to intersection.
        assert wh._assembly["Sold"] == "union"
        assert wh._assembly["C_Sale"] == "union"
        assert wh._assembly["C_Emp"] == "intersect"

    def test_routed_on_non_attribute_rejected(self, catalog):
        with pytest.raises(WarehouseError, match="not an.*attribute"):
            ShardedWarehouse.specify(
                catalog, VIEWS, routings=[ShardRouting("Sale", "ghost", shards=2)]
            )

    def test_unknown_routed_relation_rejected(self, catalog):
        catalog2 = Catalog()
        catalog2.relation("Sale", ("item", "clerk"))
        with pytest.raises(WarehouseError, match="not in catalog"):
            ShardedWarehouse.specify(
                catalog2,
                [View("V", parse("Sale"))],
                routings=[ShardRouting("Ghost", "k", shards=2)],
            )

    def test_co_partitioned_two_routed_relations_admitted(self):
        catalog = Catalog()
        catalog.relation("A", ("k", "x"))
        catalog.relation("B", ("k", "y"))
        wh = ShardedWarehouse.specify(
            catalog,
            [View("V", parse("A join B"))],
            routings=[
                ShardRouting("A", "k", shards=2),
                ShardRouting("B", "k", shards=2),
            ],
        )
        assert wh._assembly["V"] == "union"
        assert wh.co_partitioned == (("A", "B"),)

    def test_non_co_partitioned_two_routed_relations_rejected(self):
        catalog = Catalog()
        catalog.relation("A", ("k", "x"))
        catalog.relation("B", ("k", "y"))
        with pytest.raises(WarehouseError, match="not co-partitioned"):
            ShardedWarehouse.specify(
                catalog,
                [View("V", parse("A join B"))],
                routings=[
                    ShardRouting("A", "k", boundaries=[4]),
                    ShardRouting("B", "k", shards=2),
                ],
            )

    def test_range_co_partitioning_requires_identical_boundaries(self):
        catalog = Catalog()
        catalog.relation("A", ("k", "x"))
        catalog.relation("B", ("k", "y"))
        with pytest.raises(WarehouseError, match="not co-partitioned"):
            ShardedWarehouse.specify(
                catalog,
                [View("V", parse("A join B"))],
                routings=[
                    ShardRouting("A", "k", boundaries=[4]),
                    ShardRouting("B", "k", boundaries=[7]),
                ],
            )


class TestShardedWarehouseEquivalence:
    OPS = [
        Update.insert(
            "Sale", ("item", "clerk"), [("Radio", "Bob"), ("Zither", "Mary")]
        ),
        Update.delete("Sale", ("item", "clerk"), [("TV", "Mary")]),
        Update.insert("Emp", ("clerk", "age"), [("Eve", 28)]),
        Update.insert("Sale", ("item", "clerk"), [("Amp", "Eve")]),
        Update.delete("Emp", ("clerk", "age"), [("Bob", 44)]).compose(
            Update.delete("Sale", ("item", "clerk"), [("Radio", "Bob")])
        ),
    ]

    @pytest.mark.parametrize(
        "routings",
        [
            [ShardRouting("Sale", "item", boundaries=["M"])],
            [ShardRouting("Sale", "item", boundaries=["D", "S"])],
            [ShardRouting("Sale", "item", shards=1)],
            [ShardRouting("Sale", "item", shards=4)],
            [ShardRouting("Sale", "clerk", shards=3)],
        ],
        ids=["range-2", "range-3", "hash-1", "hash-4", "by-clerk-3"],
    )
    def test_matches_unsharded_reference(self, catalog, routings):
        sharded, reference = make_pair(catalog, routings)
        assert_equivalent(sharded, reference)
        for update in self.OPS:
            sharded.apply(update)
            reference.apply(update)
            assert_equivalent(sharded, reference)

    def test_answer_parity(self, catalog):
        sharded, reference = make_pair(
            catalog, [ShardRouting("Sale", "item", boundaries=["M"])]
        )
        for update in self.OPS[:3]:
            sharded.apply(update)
            reference.apply(update)
        query = parse("pi[item, age](Sale join Emp)")
        assert sharded.answer(query) == reference.answer(query)

    def test_apply_batch_parity(self, catalog):
        sharded, reference = make_pair(
            catalog, [ShardRouting("Sale", "item", shards=2)]
        )
        sharded.apply_batch(self.OPS)
        reference.apply_batch(self.OPS)
        assert_equivalent(sharded, reference)

    def test_insert_delete_conveniences(self, catalog):
        sharded, reference = make_pair(
            catalog, [ShardRouting("Sale", "item", shards=2)]
        )
        sharded.insert("Sale", [("Amp", "Bob")])
        reference.insert("Sale", [("Amp", "Bob")])
        sharded.delete("Emp", [("Ann", 31)])
        reference.delete("Emp", [("Ann", 31)])
        assert_equivalent(sharded, reference)


class TestCoPartitionedEquivalence:
    """A two-routed-relation view (PR 8 rejected it) vs the unsharded oracle.

    Both fact relations route on the join attribute with compatible
    routings, so the prover admits the layout via co-partitioning; this
    suite is the dynamic half of that certificate — every update sequence
    must keep the sharded warehouse observationally identical to an
    unsharded reference.
    """

    VIEWS = [View("Fulfilled", parse("Orders join Shipments"))]

    INIT = {
        "Orders": Relation(
            ("okey", "item"), [(1, "TV"), (2, "Car"), (5, "Amp")]
        ),
        "Shipments": Relation(
            ("okey", "carrier"), [(1, "UPS"), (5, "DHL"), (7, "FedEx")]
        ),
    }

    OPS = [
        Update.insert("Orders", ("okey", "item"), [(7, "Radio"), (8, "Mic")]),
        Update.insert("Shipments", ("okey", "carrier"), [(2, "UPS")]),
        Update.delete("Orders", ("okey", "item"), [(1, "TV")]),
        Update.insert("Orders", ("okey", "item"), [(3, "Zither")]).compose(
            Update.delete("Shipments", ("okey", "carrier"), [(5, "DHL")])
        ),
        Update.insert("Shipments", ("okey", "carrier"), [(3, "DHL"), (8, "DHL")]),
    ]

    def fact_catalog(self):
        catalog = Catalog()
        catalog.relation("Orders", ("okey", "item"), key=("okey",))
        catalog.relation("Shipments", ("okey", "carrier"), key=("okey",))
        return catalog

    @pytest.mark.parametrize(
        "routings",
        [
            [
                ShardRouting("Orders", "okey", shards=2),
                ShardRouting("Shipments", "okey", shards=2),
            ],
            [
                ShardRouting("Orders", "okey", shards=4),
                ShardRouting("Shipments", "okey", shards=4),
            ],
            [
                ShardRouting("Orders", "okey", boundaries=[3, 6]),
                ShardRouting("Shipments", "okey", boundaries=[3, 6]),
            ],
        ],
        ids=["hash-2", "hash-4", "range-3"],
    )
    def test_matches_unsharded_reference(self, routings):
        catalog = self.fact_catalog()
        sharded = ShardedWarehouse.specify(catalog, self.VIEWS, routings=routings)
        sharded.initialize(self.INIT)
        reference = Warehouse(specify(catalog, self.VIEWS))
        reference.initialize(self.INIT)
        assert sharded.state() == reference.state
        for update in self.OPS:
            sharded.apply(update)
            reference.apply(update)
            assert sharded.state() == reference.state
            for base in ("Orders", "Shipments"):
                assert sharded.reconstruct(base) == reference.reconstruct(base)

    def test_join_rows_actually_cross_shards(self):
        # Guard against a vacuous pass: the layout really splits joining
        # pairs across shards, so union assembly is doing real work.
        catalog = self.fact_catalog()
        routings = [
            ShardRouting("Orders", "okey", shards=2),
            ShardRouting("Shipments", "okey", shards=2),
        ]
        sharded = ShardedWarehouse.specify(catalog, self.VIEWS, routings=routings)
        sharded.initialize(self.INIT)
        per_shard = [
            shard.state["Fulfilled"].rows for shard in sharded.shards
        ]
        assert sum(1 for rows in per_shard if rows) >= 2
        assert sharded.relation("Fulfilled").rows == frozenset(
            rows for shard_rows in per_shard for rows in shard_rows
        )


class TestMVCCCommits:
    def test_snapshot_isolation(self, catalog):
        sharded, _ = make_pair(
            catalog, [ShardRouting("Sale", "item", boundaries=["M"])]
        )
        snap = sharded.snapshot()
        sold = snap.relation("Sold")
        sharded.insert("Sale", [("Amp", "Bob")])
        sharded.delete("Sale", [("TV", "Mary")])
        assert snap.relation("Sold") == sold
        assert sharded.snapshot().version > snap.version

    def test_snapshot_cached_per_version(self, catalog):
        sharded, _ = make_pair(catalog, [ShardRouting("Sale", "item", shards=2)])
        assert sharded.snapshot() is sharded.snapshot()
        sharded.insert("Sale", [("Amp", "Bob")])
        assert sharded.snapshot() is not None

    def test_uncommitted_shard_refresh_invisible_to_readers(self, catalog):
        sharded, _ = make_pair(
            catalog, [ShardRouting("Sale", "item", boundaries=["M"])]
        )
        before = sharded.relation("Sold")
        update = Update.insert("Sale", ("item", "clerk"), [("Amp", "Bob")])
        parts = sharded.split(update)
        for index in sorted(parts):
            sharded.apply_to_shard(index, parts[index])
            # Shard state moved, but nothing is published yet.
            assert sharded.relation("Sold") == before
        sharded.commit(parts, update)
        assert ("Amp", "Bob", 44) in sharded.relation("Sold")

    def test_commit_log_replay_oracle(self, catalog):
        sharded, _ = make_pair(
            catalog, [ShardRouting("Sale", "item", boundaries=["M"])]
        )
        for update in TestShardedWarehouseEquivalence.OPS:
            sharded.apply(update)
        replay = Warehouse(specify(catalog, VIEWS))
        replay.initialize(INIT)
        for record in sharded.commit_log:
            replay.apply(record.update)
        assert replay.state == sharded.state()

    def test_uninitialized_snapshot_rejected(self, catalog):
        sharded = ShardedWarehouse.specify(
            catalog, VIEWS, routings=[ShardRouting("Sale", "item", shards=2)]
        )
        with pytest.raises(WarehouseError, match="not initialized"):
            sharded.snapshot()

    def test_empty_update_is_a_noop(self, catalog):
        sharded, _ = make_pair(catalog, [ShardRouting("Sale", "item", shards=2)])
        version = sharded.version
        assert sharded.apply(Update(())) == {}
        assert sharded.apply_batch([]) == {}
        assert sharded.version == version


class TestObservability:
    def test_per_shard_metrics_and_aggregation(self, catalog):
        sharded, _ = make_pair(
            catalog, [ShardRouting("Sale", "item", boundaries=["M"])]
        )
        sharded.insert("Sale", [("Amp", "Bob")])  # shard 0 only
        metrics = sharded.metrics
        assert metrics.value("warehouse.shards") == 2
        assert metrics.value("warehouse.commits") == 2  # initialize + insert
        assert metrics.value("warehouse.shard_refreshes.0") == 1
        assert metrics.value("warehouse.shard_refreshes.1") == 0
        aggregated = sharded.aggregate_metrics()
        # Shard counters fold flat: total refreshes across all shards.
        assert aggregated.value("warehouse.refreshes") == sum(
            shard.metrics.value("warehouse.refreshes")
            for shard in sharded.shards
        )

    def test_storage_rows_counts_slices(self, catalog):
        sharded, reference = make_pair(
            catalog, [ShardRouting("Sale", "item", boundaries=["M"])]
        )
        # Sliced relations don't double-count; replicated ones do (per shard).
        assert sharded.storage_rows() >= reference.storage_rows()

    def test_enable_tracing_reaches_shards(self, catalog):
        sharded, _ = make_pair(catalog, [ShardRouting("Sale", "item", shards=2)])
        sharded.enable_tracing(capacity=8)
        sharded.insert("Sale", [("Amp", "Bob")])
        assert all(shard.tracer is not None for shard in sharded.shards)
        assert any(
            shard.last_trace("refresh") is not None for shard in sharded.shards
        )
