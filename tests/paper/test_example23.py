"""E4 — Example 2.3: covers, keys, and INDs (Theorem 2.2 worked through).

R1(A,B,C), R2(A,C,D), R3(A,B); A is a key of each R_i;
AB(R3) ⊆ AB(R1) and AC(R2) ⊆ AC(R1).
V1 = R1 join R2, V2 = R3, V3 = pi_AB(R1), V4 = pi_AC(R1).
"""

from __future__ import annotations

import random

import pytest

from repro import Catalog, Relation, View, complement_thm22, parse
from repro.core.covers import enumerate_covers, ind_key_views, key_views
from repro.core.independence import verify_complement


def generate_valid_state(seed: int, n: int = 8):
    """Random state of the Example 2.3 schema satisfying keys and INDs."""
    rng = random.Random(seed)
    r1_rows = {}
    for i in range(n):
        r1_rows[f"k{i}"] = (f"k{i}", rng.randrange(4), rng.randrange(4))
    r1 = list(r1_rows.values())
    # R3 rows must project into AB(R1); R2 rows into AC(R1).
    r3 = [(a, b) for (a, b, _c) in rng.sample(r1, rng.randint(0, n))]
    r2 = [
        (a, c, rng.randrange(4))
        for (a, _b, c) in rng.sample(r1, rng.randint(0, n))
    ]
    return {
        "R1": Relation(("A", "B", "C"), r1),
        "R2": Relation(("A", "C", "D"), r2),
        "R3": Relation(("A", "B"), r3),
    }


class TestNotation:
    """The example's V_K1, V_K1^ind, and C_R1^ind enumerations."""

    def test_vk1(self, example23_catalog, example23_views):
        elements = key_views(example23_catalog, example23_views, "R1")
        assert {e.label for e in elements} == {"V1", "V3", "V4"}

    def test_vk1_ind_adds_pseudo_views(self, example23_catalog, example23_views):
        elements = ind_key_views(example23_catalog, example23_views, "R1")
        labels = {e.label for e in elements}
        assert {"V1", "V3", "V4"} <= labels
        assert any("R3" in label for label in labels)
        assert any("R2" in label for label in labels)
        assert len(elements) == 5

    def test_cover_enumeration_matches_paper(
        self, example23_catalog, example23_views
    ):
        elements = ind_key_views(example23_catalog, example23_views, "R1")
        covers = enumerate_covers(
            elements, frozenset(example23_catalog.attributes("R1"))
        )
        cover_labels = {frozenset(e.label for e in cover) for cover in covers}
        by_name = {e.label: e for e in elements}
        r3_label = next(l for l in by_name if "R3" in l)
        r2_label = next(l for l in by_name if "R2" in l)
        expected = {
            frozenset({"V1"}),
            frozenset({"V3", "V4"}),
            frozenset({r3_label, "V4"}),
            frozenset({"V3", r2_label}),
            frozenset({r3_label, r2_label}),
        }
        assert cover_labels == expected


class TestNoConstraints:
    """First scenario: no keys, no INDs — V3 and V4 are of no use."""

    def test_complements(self, example23_views):
        catalog = Catalog()
        catalog.relation("R1", ("A", "B", "C"))
        catalog.relation("R2", ("A", "C", "D"))
        catalog.relation("R3", ("A", "B"))
        spec = complement_thm22(catalog, example23_views)
        assert str(spec.complements["R1"].definition) == "R1 minus pi[A, B, C](V1)"
        assert str(spec.complements["R2"].definition) == "R2 minus pi[A, C, D](V1)"
        # C3 = R3 - V2 is provably empty even without constraints (V2 = R3).
        assert spec.complements["R3"].provably_empty


class TestKeyOnly:
    """Second scenario: A is a key of R1 — C1 collapses via V3 join V4."""

    def test_c1_empty_with_key(self, example23_views):
        catalog = Catalog()
        catalog.relation("R1", ("A", "B", "C"), key=("A",))
        catalog.relation("R2", ("A", "C", "D"))
        catalog.relation("R3", ("A", "B"))
        spec = complement_thm22(catalog, example23_views)
        assert spec.complements["R1"].provably_empty
        # The lossless key join appears in the inverse.
        assert "V3 join V4" in str(spec.inverses["R1"])

    def test_c2_unchanged(self, example23_views):
        catalog = Catalog()
        catalog.relation("R1", ("A", "B", "C"), key=("A",))
        catalog.relation("R2", ("A", "C", "D"))
        catalog.relation("R3", ("A", "B"))
        spec = complement_thm22(catalog, example23_views)
        assert str(spec.complements["R2"].definition) == "R2 minus pi[A, C, D](V1)"


class TestIndScenario:
    """Third scenario: V' = {V1, V3}, keys on all, AC(R2) ⊆ AC(R1)."""

    def make_catalog(self) -> Catalog:
        catalog = Catalog()
        catalog.relation("R1", ("A", "B", "C"), key=("A",))
        catalog.relation("R2", ("A", "C", "D"), key=("A",))
        catalog.relation("R3", ("A", "B"), key=("A",))
        catalog.inclusion("R2", ("A", "C"), "R1")
        return catalog

    def make_views(self):
        return [View("V1", parse("R1 join R2")), View("V3", parse("pi[A, B](R1)"))]

    def test_r1_inverse_uses_substituted_r2(self):
        # R1^ir includes pi_ABC(V3 join pi_AC(R2)) with R2 replaced by its
        # own inverse pi_ACD(V1) — footnote 3's substitution.
        spec = complement_thm22(self.make_catalog(), self.make_views())
        inverse = str(spec.inverses["R1"])
        assert "V3 join pi[A, C]" in inverse
        assert "R2" not in inverse  # no base relation leaks into the inverse

    def test_c1_definition_subtracts_both_hats(self):
        spec = complement_thm22(self.make_catalog(), self.make_views())
        definition = str(spec.complements["R1"].definition)
        assert definition.startswith("R1 minus")
        assert "V3 join" in definition

    def test_complement_correct_on_random_states(self, example23_catalog, example23_views):
        spec = complement_thm22(example23_catalog, example23_views)
        for seed in range(15):
            state = generate_valid_state(seed)
            ok, problems = verify_complement(spec, state)
            assert ok, (seed, problems)

    def test_ind_scenario_complement_correct(self):
        catalog = self.make_catalog()
        spec = complement_thm22(catalog, self.make_views())
        rng = random.Random(3)
        for seed in range(15):
            full = generate_valid_state(seed)
            state = {
                "R1": full["R1"],
                "R2": full["R2"],
                "R3": Relation(("A", "B"), []),
            }
            ok, problems = verify_complement(spec, state)
            assert ok, (seed, problems)
