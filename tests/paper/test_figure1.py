"""E1 — Figure 1 and Examples 1.1 / 1.2, replayed exactly.

The warehouse is the single view ``Sold = Sale join Emp``. The paper derives
the auxiliary views ``C1 = Emp - pi_{clerk,age}(Sold)`` and
``C2 = Sale - pi_{item,clerk}(Sold)``, shows that ``{Sold, C1, C2}``
recomputes both base relations, and maintains the warehouse through the
insertion of (Computer, Paula) into Sale without querying the sources.
"""

from __future__ import annotations

import pytest

from repro import (
    Relation,
    Update,
    Warehouse,
    complement_prop22,
    evaluate,
    parse,
)
from repro.core.independence import verify_complement


@pytest.fixture
def warehouse(figure1_catalog, figure1_database, sold_view) -> Warehouse:
    wh = Warehouse.specify(figure1_catalog, [sold_view], method="prop22")
    wh.initialize(figure1_database)
    return wh


class TestComplementShape:
    def test_c1_is_emp_minus_projection(self, figure1_catalog, sold_view):
        spec = complement_prop22(figure1_catalog, [sold_view])
        assert str(spec.complements["Emp"].definition) == (
            "Emp minus pi[clerk, age](Sold)"
        )

    def test_c2_is_sale_minus_projection(self, figure1_catalog, sold_view):
        spec = complement_prop22(figure1_catalog, [sold_view])
        assert str(spec.complements["Sale"].definition) == (
            "Sale minus pi[item, clerk](Sold)"
        )

    def test_example12_inverse_for_emp(self, figure1_catalog, sold_view):
        spec = complement_prop22(figure1_catalog, [sold_view])
        assert str(spec.inverses["Emp"]) == "C_Emp union pi[clerk, age](Sold)"

    def test_example12_inverse_for_sale(self, figure1_catalog, sold_view):
        spec = complement_prop22(figure1_catalog, [sold_view])
        assert str(spec.inverses["Sale"]) == "C_Sale union pi[item, clerk](Sold)"


class TestInitialState:
    def test_sold_contents(self, warehouse):
        assert warehouse.relation("Sold").to_set() == {
            ("TV set", "Mary", 23),
            ("VCR", "Mary", 23),
            ("PC", "John", 25),
        }

    def test_c1_holds_exactly_paula(self, warehouse):
        # Paula appears in Emp but sells nothing, so she is the missing info.
        assert warehouse.relation("C_Emp").to_set() == {("Paula", 32)}

    def test_c2_is_empty_on_this_state(self, warehouse):
        # Every Sale clerk appears in Emp here, so nothing is missing.
        assert warehouse.relation("C_Sale").to_set() == frozenset()

    def test_complement_verifies(self, warehouse, figure1_database):
        ok, problems = verify_complement(warehouse.spec, figure1_database.state())
        assert ok, problems


class TestExample11Insertion:
    """Insert (Computer, Paula) into Sale; the join partner comes from C1."""

    def test_sold_gains_the_join_tuple(self, warehouse):
        warehouse.insert("Sale", [("Computer", "Paula")])
        assert ("Computer", "Paula", 32) in warehouse.relation("Sold")

    def test_c1_loses_paula(self, warehouse):
        warehouse.insert("Sale", [("Computer", "Paula")])
        assert warehouse.relation("C_Emp").to_set() == frozenset()

    def test_matches_source_side_recomputation(
        self, warehouse, figure1_database
    ):
        warehouse.insert("Sale", [("Computer", "Paula")])
        figure1_database.insert("Sale", [("Computer", "Paula")])
        expected = evaluate(parse("Sale join Emp"), figure1_database.state())
        assert warehouse.relation("Sold") == expected

    def test_deletions_maintained_too(self, warehouse, figure1_database):
        # Footnote: C1 and C2 suffice for deletions from Sale and Emp as well.
        warehouse.delete("Sale", [("TV set", "Mary")])
        figure1_database.delete("Sale", [("TV set", "Mary")])
        expected = evaluate(parse("Sale join Emp"), figure1_database.state())
        assert warehouse.relation("Sold") == expected

    def test_emp_deletion_maintained(self, warehouse, figure1_database):
        warehouse.delete("Emp", [("Paula", 32)])
        figure1_database.delete("Emp", [("Paula", 32)])
        expected = evaluate(parse("Sale join Emp"), figure1_database.state())
        assert warehouse.relation("Sold") == expected
        assert warehouse.reconstruct("Emp") == figure1_database["Emp"]


class TestExample12QueryIndependence:
    """Q = pi_clerk(Sale) union pi_clerk(Emp) needs the complement."""

    QUERY = "pi[clerk](Sale) union pi[clerk](Emp)"

    def test_sold_alone_cannot_answer(self, warehouse, figure1_database):
        # The view only knows clerks appearing in *both* relations.
        sold_clerks = warehouse.relation("Sold").project(("clerk",))
        assert sold_clerks.to_set() == {("Mary",), ("John",)}

    def test_augmented_warehouse_answers_q(self, warehouse, figure1_database):
        answer = warehouse.answer(self.QUERY)
        expected = evaluate(parse(self.QUERY), figure1_database.state())
        assert answer == expected
        assert ("Paula",) in answer

    def test_base_relations_recomputable(self, warehouse, figure1_database):
        assert warehouse.reconstruct("Emp") == figure1_database["Emp"]
        assert warehouse.reconstruct("Sale") == figure1_database["Sale"]
