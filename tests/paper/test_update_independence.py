"""E7 — Section 4 / Theorem 4.1 / Example 4.1: update independence.

Checks the commuting diagram of Figure 3 (``w' = W(d')``) on concrete
update streams, the derived maintenance expressions of Example 4.1, and the
equivalence of the incremental engine with the full-recompute baseline.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    Database,
    Relation,
    Update,
    View,
    Warehouse,
    parse,
)
from repro.algebra.deltas import ins_name
from repro.core.independence import warehouse_state
from repro.core.maintenance import (
    full_recompute_state,
    maintenance_expressions,
    refresh_state,
)


@pytest.fixture
def warehouse_ri(figure1_catalog_ri):
    return Warehouse.specify(
        figure1_catalog_ri, [View("Sold", parse("Sale join Emp"))]
    )


@pytest.fixture
def loaded(figure1_catalog_ri, warehouse_ri):
    db = Database(figure1_catalog_ri)
    db.load("Emp", [("Mary", 23), ("John", 25), ("Paula", 32)])
    db.load("Sale", [("TV set", "Mary"), ("VCR", "Mary"), ("PC", "John")])
    warehouse_ri.initialize(db)
    return db, warehouse_ri


class TestExample41Expressions:
    """The symbolic maintenance expressions for an insertion set s into Sale."""

    def test_sold_insert_expression(self, warehouse_ri):
        plan = maintenance_expressions(
            warehouse_ri.spec, ["Sale"], insert_only=True
        )
        inserts = str(plan.expressions["Sold"].inserts)
        # Paper: Sold' = Sold ∪ (s join (pi_{clerk,age}(Sold) ∪ C1)); our C1
        # is named C_Emp and s is Sale__ins.
        assert inserts == (
            f"{ins_name('Sale')} join (C_Emp union pi[clerk, age](Sold))"
        )

    def test_sold_insert_no_deletion_side(self, warehouse_ri):
        plan = maintenance_expressions(
            warehouse_ri.spec, ["Sale"], insert_only=True
        )
        deletes = plan.expressions["Sold"].deletes
        # Insertions into Sale never delete Sold tuples.
        from repro.algebra.expressions import Empty

        assert isinstance(deletes, Empty)

    def test_expressions_reference_warehouse_only(self, warehouse_ri):
        plan = maintenance_expressions(warehouse_ri.spec, ["Sale"])
        allowed = set(warehouse_ri.spec.warehouse_names()) | {
            "Sale__ins",
            "Sale__del",
        }
        for name, exprs in plan.expressions.items():
            names = exprs.inserts.relation_names() | exprs.deletes.relation_names()
            assert names <= allowed, (name, names)

    def test_c1_shrinks_on_insert(self, loaded):
        db, wh = loaded
        assert wh.relation("C_Emp").to_set() == {("Paula", 32)}
        wh.apply(db.insert("Sale", [("Computer", "Paula")]))
        assert wh.relation("C_Emp").to_set() == frozenset()


class TestCommutingDiagram:
    """w' computed from (w, u) equals W(d') — Figure 3."""

    def scripted_updates(self, db: Database):
        yield db.insert("Sale", [("Computer", "Paula")])
        yield db.insert("Emp", [("Zoe", 41), ("Abe", 19)])
        yield db.insert("Sale", [("radio", "Zoe"), ("TV set", "Zoe")])
        yield db.delete("Sale", [("VCR", "Mary"), ("PC", "John")])
        yield db.delete("Emp", [("Abe", 19)])

    def test_incremental_matches_mapping(self, loaded):
        db, wh = loaded
        for update in self.scripted_updates(db):
            wh.apply(update)
            assert wh.state == warehouse_state(wh.spec, db.state())

    def test_incremental_matches_full_recompute(self, loaded):
        db, wh = loaded
        state = dict(wh.state)
        for update in self.scripted_updates(db):
            incremental, _ = refresh_state(wh.spec, state, update)
            full = full_recompute_state(wh.spec, state, update)
            assert incremental == full
            state = incremental

    def test_base_reconstruction_tracks_sources(self, loaded):
        db, wh = loaded
        for update in self.scripted_updates(db):
            wh.apply(update)
        assert wh.reconstruct("Sale") == db["Sale"]
        assert wh.reconstruct("Emp") == db["Emp"]


class TestEffectiveness:
    def test_redundant_insert_is_noop(self, loaded):
        db, wh = loaded
        before = dict(wh.state)
        # (TV set, Mary) is already present; sources would not even report
        # it, but a noisy source must not corrupt the warehouse.
        update = Update.insert("Sale", ("item", "clerk"), [("TV set", "Mary")])
        wh.apply(update)
        assert wh.state == before

    def test_phantom_delete_is_noop(self, loaded):
        db, wh = loaded
        before = dict(wh.state)
        update = Update.delete("Sale", ("item", "clerk"), [("ghost", "Nobody")])
        wh.apply(update)
        assert wh.state == before

    def test_mixed_transaction(self, loaded):
        db, wh = loaded
        update = Update.of(
            *Update.insert("Sale", ("item", "clerk"), [("Computer", "Paula")]),
            *Update.delete("Sale", ("item", "clerk"), [("VCR", "Mary")]),
        )
        db.apply(update)
        wh.apply(update)
        assert wh.state == warehouse_state(wh.spec, db.state())


class TestMultiRelationUpdates:
    def test_simultaneous_update_of_both_relations(self, loaded):
        db, wh = loaded
        update = Update.of(
            *Update.insert("Emp", ("clerk", "age"), [("Zoe", 41)]),
            *Update.insert("Sale", ("item", "clerk"), [("radio", "Zoe")]),
        )
        db.apply(update)
        wh.apply(update)
        assert wh.state == warehouse_state(wh.spec, db.state())
        assert ("radio", "Zoe", 41) in wh.relation("Sold")
