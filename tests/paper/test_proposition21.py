"""Proposition 2.1: C is a complement iff d ↦ (V(d), C(d)) is injective.

Verified exhaustively over tiny domains: with the complement stored the
mapping is injective; with the complement removed (views alone) it is not.
"""

from __future__ import annotations

import pytest

from repro import Catalog, View, complement_prop22, parse, rel
from repro.core.complement import WarehouseSpec
from repro.core.independence import (
    enumerate_states,
    is_complement,
    verify_one_to_one,
)


@pytest.fixture
def tiny_catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"))
    return catalog


DOMAINS = {"item": ["tv"], "clerk": ["m", "j"], "age": [1]}


def tiny_states(catalog):
    return list(enumerate_states(catalog, DOMAINS, max_rows_per_relation=2))


class TestInjectivity:
    def test_with_complement_mapping_is_injective(self, tiny_catalog):
        spec = complement_prop22(tiny_catalog, [View("Sold", parse("Sale join Emp"))])
        states = tiny_states(tiny_catalog)
        assert len(states) > 10
        ok, witness = verify_one_to_one(spec, states)
        assert ok, witness

    def test_views_alone_not_injective(self, tiny_catalog):
        # A spec with no complements at all: the bare view mapping.
        views = [View("Sold", parse("Sale join Emp"))]
        bare = WarehouseSpec(
            tiny_catalog,
            views,
            complements={},
            inverses={"Sale": rel("Sold"), "Emp": rel("Sold")},
            method="none",
        )
        states = tiny_states(tiny_catalog)
        ok, witness = verify_one_to_one(bare, states)
        assert not ok
        i, j = witness
        # The witness states genuinely differ yet map to the same view state.
        assert states[i] != states[j]

    def test_reconstruction_on_all_states(self, tiny_catalog):
        spec = complement_prop22(tiny_catalog, [View("Sold", parse("Sale join Emp"))])
        assert is_complement(spec, tiny_states(tiny_catalog))

    def test_trivial_complement_also_injective(self, tiny_catalog):
        # Copying the base relations is always a complement (paper, Sec. 1).
        views = [View("Sold", parse("Sale join Emp"))]
        from repro.core.complement import ComplementView

        trivial = WarehouseSpec(
            tiny_catalog,
            views,
            complements={
                "Sale": ComplementView("C_Sale", "Sale", parse("Sale"), False),
                "Emp": ComplementView("C_Emp", "Emp", parse("Emp"), False),
            },
            inverses={"Sale": rel("C_Sale"), "Emp": rel("C_Emp")},
            method="trivial",
        )
        states = tiny_states(tiny_catalog)
        ok, witness = verify_one_to_one(trivial, states)
        assert ok
        assert is_complement(trivial, states)
