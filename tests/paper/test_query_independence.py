"""E6 — Section 3 / Theorem 3.1: query independence via ``Q^ = Q ∘ W^{-1}``.

Includes the paper's worked translation: with the Example 2.4 constraint,
``Q = pi_age(sigma[item='computer'](Sale) join Emp)`` translates to
``pi_age(sigma[item='computer'](pi_{item,clerk}(Sold)) join
(pi_{clerk,age}(Sold) ∪ C1))``.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    Database,
    Relation,
    View,
    Warehouse,
    WarehouseError,
    evaluate,
    parse,
)
from repro.core.translation import translate_query


@pytest.fixture
def warehouse_ri(figure1_catalog_ri):
    return Warehouse.specify(
        figure1_catalog_ri, [View("Sold", parse("Sale join Emp"))]
    )


@pytest.fixture
def loaded(figure1_catalog_ri, warehouse_ri):
    db = Database(figure1_catalog_ri)
    db.load("Emp", [("Mary", 23), ("John", 25), ("Paula", 32)])
    db.load(
        "Sale",
        [("TV set", "Mary"), ("VCR", "Mary"), ("PC", "John"), ("computer", "Paula")],
    )
    warehouse_ri.initialize(db)
    return db, warehouse_ri


class TestWorkedTranslation:
    def test_paper_translation_shape(self, warehouse_ri):
        query = parse("pi[age](sigma[item = 'computer'](Sale) join Emp)")
        translated = warehouse_ri.translate(query)
        assert str(translated) == (
            "pi[age](sigma[item = 'computer'](pi[item, clerk](Sold)) join "
            "(C_Emp union pi[clerk, age](Sold)))"
        )

    def test_no_base_relation_in_translation(self, warehouse_ri):
        query = parse("pi[age](sigma[item = 'computer'](Sale) join Emp)")
        translated = warehouse_ri.translate(query)
        assert translated.relation_names() <= set(
            warehouse_ri.spec.warehouse_names()
        )

    def test_translated_query_answers_correctly(self, loaded):
        db, wh = loaded
        query = parse("pi[age](sigma[item = 'computer'](Sale) join Emp)")
        assert wh.answer(query) == evaluate(query, db.state())
        assert wh.answer(query).to_set() == {(32,)}


QUERIES = [
    "Sale",
    "Emp",
    "pi[clerk](Sale) union pi[clerk](Emp)",
    "pi[clerk](Sale join Emp)",
    "Emp minus pi[clerk, age](Sale join Emp)",
    "sigma[age > 24](Emp)",
    "pi[item](Sale) join pi[clerk](Emp) join Sale",
    "sigma[age >= 23 and age <= 30](Emp) join Sale",
    "pi[age](Emp) minus pi[age](Sale join Emp)",
    "rho[age -> years](Emp)",
]


class TestArbitraryQueries:
    """Every query over D is answered exactly (Definition 3.1)."""

    @pytest.mark.parametrize("text", QUERIES)
    def test_query_commutes(self, loaded, text):
        db, wh = loaded
        query = parse(text)
        assert wh.answer(query) == evaluate(query, db.state()), text

    @pytest.mark.parametrize("text", QUERIES)
    def test_query_commutes_after_updates(self, loaded, text):
        db, wh = loaded
        wh.apply(db.insert("Emp", [("Zoe", 41)]))
        wh.apply(db.insert("Sale", [("radio", "Zoe"), ("TV set", "John")]))
        wh.apply(db.delete("Sale", [("VCR", "Mary")]))
        query = parse(text)
        assert wh.answer(query) == evaluate(query, db.state()), text

    def test_unknown_relation_rejected(self, warehouse_ri):
        with pytest.raises(WarehouseError):
            translate_query(warehouse_ri.spec, parse("Nope"))


class TestSourcesOffline:
    """The whole point: answering works with sources unavailable."""

    def test_answers_without_source_state(self, loaded):
        db, wh = loaded
        snapshot = {name: db[name] for name in ("Sale", "Emp")}
        # Simulate outage: drop the source database entirely.
        del db
        query = parse("pi[clerk](Sale) union pi[clerk](Emp)")
        expected = evaluate(query, snapshot)
        assert wh.answer(query) == expected
