"""E3 — Example 2.2: Proposition 2.2 is not minimal for proper PSJ views.

``D = {R(A,B,C)}``, ``V1 = pi_AB(R)``, ``V2 = pi_BC(R)``,
``V3 = sigma_{B=b}(R)``. Proposition 2.2 yields ``C_R = R - V3`` (only V3
retains all attributes). The paper exhibits the strictly smaller

    C'_R = (R join pi_AB((V1 join V2) - R)) - V3.

ERRATUM (reproduction finding). The paper's printed recomputation

    R = C'_R ∪ V3 ∪ ((V1 - pi_AB(C'_R ∪ V3)) join (V2 - pi_BC(C'_R ∪ V3)))

is *incorrect*: subtracting on the V2 side loses tuples. Witness:
``R = {(a,a,a), (a,a,b), (b,a,a)}`` gives ``C'_R = {(b,a,a)}``, and the
printed formula rebuilds only ``{(a,a,b), (b,a,a)}`` — the tuple (a,a,a)
vanishes because ``(a,a) = pi_BC((b,a,a))`` is subtracted from V2. The
corrected recomputation, verified exhaustively over all 256 states of the
2x2x2 domain (and proving C'_R a complement per Proposition 2.1), is

    R = C'_R ∪ V3 ∪ ((V1 - pi_AB(C'_R ∪ V3)) join V2).

Soundness: a pair (x, y) of V1 surviving the subtraction has y != b (else it
projects into V3) and is not bad (else it projects into C'_R), so *all* its
V2-completions lie in R; completeness: a tuple of R outside C'_R ∪ V3 has a
surviving AB-pair by the same case analysis.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro import (
    Catalog,
    Relation,
    View,
    complement_prop22,
    evaluate,
    parse,
)
from repro.core.minimality import is_minimal_certificate, smaller_on_states


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("R", ("A", "B", "C"))
    return catalog


@pytest.fixture
def views():
    return [
        View("V1", parse("pi[A, B](R)")),
        View("V2", parse("pi[B, C](R)")),
        View("V3", parse("sigma[B = 'b'](R)")),
    ]


# The paper's C'_R, written over base relations (V_i expanded).
C_PRIME = parse(
    "(R join pi[A, B]((pi[A, B](R) join pi[B, C](R)) minus R))"
    " minus sigma[B = 'b'](R)"
)

# The recomputation as printed in the paper (incorrect; see module docstring).
RECOMPUTE_AS_PRINTED = parse(
    "CP union sigma[B = 'b'](R) union "
    "((pi[A, B](R) minus pi[A, B](CP union sigma[B = 'b'](R))) join "
    " (pi[B, C](R) minus pi[B, C](CP union sigma[B = 'b'](R))))"
)

# The corrected recomputation (verified exhaustively below).
RECOMPUTE_CORRECTED = parse(
    "CP union sigma[B = 'b'](R) union "
    "((pi[A, B](R) minus pi[A, B](CP union sigma[B = 'b'](R))) join pi[B, C](R))"
)


def all_small_states(values=("a", "b"), max_rows=None):
    rows = list(itertools.product(values, repeat=3))
    limit = len(rows) if max_rows is None else max_rows
    states = []
    for size in range(limit + 1):
        for combo in itertools.combinations(rows, size):
            states.append({"R": Relation(("A", "B", "C"), combo)})
    return states


class TestProp22Complement:
    def test_cr_is_r_minus_v3(self, catalog, views):
        spec = complement_prop22(catalog, views)
        over_sources = spec.complements["R"].definition_over_sources(spec.views)
        assert str(over_sources) == "R minus sigma[B = 'b'](R)"

    def test_no_minimality_certificate(self, catalog, views):
        spec = complement_prop22(catalog, views)
        assert not is_minimal_certificate(spec).certified


class TestPaperCPrime:
    def test_c_prime_is_a_complement(self, catalog, views):
        # For every state over the 2x2x2 domain (all 256), C'_R plus the
        # views recompute R exactly — via the *corrected* formula.
        for state in all_small_states():
            c_prime = evaluate(C_PRIME, state)
            extended = dict(state)
            extended["CP"] = c_prime
            rebuilt = evaluate(RECOMPUTE_CORRECTED, extended)
            assert rebuilt == state["R"], state

    def test_mapping_is_injective(self, catalog, views):
        # Proposition 2.1 check: (V1, V2, V3, C'_R) determines R uniquely
        # over the full 2x2x2 state space.
        exprs = [parse("pi[A, B](R)"), parse("pi[B, C](R)"),
                 parse("sigma[B = 'b'](R)"), C_PRIME]
        images = {}
        for state in all_small_states():
            image = tuple(
                tuple(sorted(evaluate(e, state).rows)) for e in exprs
            )
            assert image not in images or images[image] == state["R"].rows
            images[image] = state["R"].rows

    def test_erratum_printed_formula_loses_tuples(self, catalog, views):
        # The witness from the module docstring: the printed recomputation
        # drops (a, a, a). This documents the erratum; if the assertion ever
        # fails, the formulas have been changed.
        state = {
            "R": Relation(
                ("A", "B", "C"), [("a", "a", "a"), ("a", "a", "b"), ("b", "a", "a")]
            )
        }
        extended = dict(state)
        extended["CP"] = evaluate(C_PRIME, state)
        rebuilt = evaluate(RECOMPUTE_AS_PRINTED, extended)
        assert ("a", "a", "a") not in rebuilt
        assert rebuilt != state["R"]
        corrected = evaluate(RECOMPUTE_CORRECTED, extended)
        assert corrected == state["R"]

    def test_c_prime_contained_in_cr(self, catalog, views):
        spec = complement_prop22(catalog, views)
        cr = spec.complements["R"].definition_over_sources(spec.views)
        states = all_small_states()
        assert smaller_on_states([C_PRIME], [cr], states)

    def test_c_prime_strictly_smaller_somewhere(self, catalog, views):
        # A witness state where C'_R loses tuples that C_R keeps: a tuple
        # (a1, b1, c1) recoverable from V1 join V2 because b1 pairs uniquely.
        state = {"R": Relation(("A", "B", "C"), [("a", "x", "c")])}
        spec = complement_prop22(catalog, views)
        cr = evaluate(
            spec.complements["R"].definition_over_sources(spec.views), state
        )
        cp = evaluate(C_PRIME, state)
        assert len(cp) < len(cr)
        assert len(cr) == 1
