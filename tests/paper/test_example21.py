"""E2 — Example 2.1 and Theorem 2.1.

``D = {R(X,Y), S(Y,Z), T(Z)}``, no constraints.

* For ``V = {V1}`` with ``V1 = R join S join T``, Proposition 2.2 yields
  ``C_R = R - pi_XY(V1)``, ``C_S = S - pi_YZ(V1)``, ``C_T = T - pi_Z(V1)``,
  strictly smaller than the trivial complement ``C' = D``.
* For ``V = {V1, V2}`` with ``V2 = S``, ``C'_S`` is always empty and the
  complement strictly shrinks again; by Theorem 2.1 it is minimal (all views
  are SJ views).
"""

from __future__ import annotations

import random

import pytest

from repro import (
    Database,
    Relation,
    View,
    complement_prop22,
    complement_thm22,
    parse,
    rel,
)
from repro.core.independence import verify_complement
from repro.core.minimality import (
    compare_view_sets,
    is_minimal_certificate,
    total_rows,
)


@pytest.fixture
def views_single():
    return [View("V1", parse("R join S join T"))]


@pytest.fixture
def views_multi():
    return [View("V1", parse("R join S join T")), View("V2", parse("S"))]


def random_states(catalog, count=12, seed=5):
    rng = random.Random(seed)
    states = []
    for _ in range(count):
        state = {}
        for schema in catalog.schemas():
            n_rows = rng.randint(0, 5)
            rows = {
                tuple(rng.randrange(3) for _ in schema.attributes)
                for _ in range(n_rows)
            }
            state[schema.name] = Relation(schema.attributes, rows)
        states.append(state)
    return states


class TestSingleView:
    def test_complement_definitions(self, example21_catalog, views_single):
        spec = complement_prop22(example21_catalog, views_single)
        assert str(spec.complements["R"].definition) == "R minus pi[X, Y](V1)"
        assert str(spec.complements["S"].definition) == "S minus pi[Y, Z](V1)"
        assert str(spec.complements["T"].definition) == "T minus pi[Z](V1)"

    def test_is_a_complement_on_random_states(self, example21_catalog, views_single):
        spec = complement_prop22(example21_catalog, views_single)
        for state in random_states(example21_catalog):
            ok, problems = verify_complement(spec, state)
            assert ok, problems

    def test_strictly_smaller_than_trivial(self, example21_catalog, views_single):
        spec = complement_prop22(example21_catalog, views_single)
        states = random_states(example21_catalog)
        candidates = [
            spec.complements[r].definition_over_sources(spec.views)
            for r in ("R", "S", "T")
        ]
        trivial = [rel("R"), rel("S"), rel("T")]
        comparison = compare_view_sets(candidates, trivial, states)
        assert comparison.strictly_smaller


class TestMultiView:
    def test_cs_prime_always_empty(self, example21_catalog, views_multi):
        # V2 = S makes the S-complement provably empty.
        spec = complement_thm22(example21_catalog, views_multi)
        assert spec.complements["S"].provably_empty

    def test_smaller_than_single_view_complement(
        self, example21_catalog, views_single, views_multi
    ):
        single = complement_prop22(example21_catalog, views_single)
        multi = complement_prop22(example21_catalog, views_multi)
        states = random_states(example21_catalog)
        single_exprs = [
            single.complements[r].definition_over_sources(single.views)
            for r in ("R", "S", "T")
        ]
        multi_exprs = [
            multi.complements[r].definition_over_sources(multi.views)
            for r in ("R", "S", "T")
        ]
        comparison = compare_view_sets(multi_exprs, single_exprs, states)
        assert comparison.le
        # Strictness shows on a state where S has a tuple outside the join.
        state = {
            "R": Relation(("X", "Y"), []),
            "S": Relation(("Y", "Z"), [(1, 2)]),
            "T": Relation(("Z",), []),
        }
        assert total_rows(multi_exprs, state) < total_rows(single_exprs, state)

    def test_theorem21_certificate(self, example21_catalog, views_multi):
        # All views are SJ views, no constraints: minimal by Theorem 2.1.
        spec = complement_prop22(example21_catalog, views_multi)
        certificate = is_minimal_certificate(spec)
        assert certificate.certified
        assert certificate.theorem == "Theorem 2.1"

    def test_storing_less_than_huyn(self, example21_catalog, views_multi):
        # The paper: {V1, V2' = C_S} stores less than {V1, V2} yet remains
        # self-maintainable. Check the storage inequality on a joinable state.
        state = {
            "R": Relation(("X", "Y"), [(0, 1), (2, 1)]),
            "S": Relation(("Y", "Z"), [(1, 5), (3, 6)]),
            "T": Relation(("Z",), [(5,), (7,)]),
        }
        spec = complement_prop22(example21_catalog, views_multi)
        cs = spec.complements["S"].definition_over_sources(spec.views)
        v2 = parse("S")
        assert total_rows([cs], state) <= total_rows([v2], state)
