"""E5 — Example 2.4: referential integrity empties a complement.

With ``pi_clerk(Sale) ⊆ pi_clerk(Emp)`` every Sale tuple has a join partner
in Emp, so ``C2 = Sale - pi_{item,clerk}(Sold)`` is always empty and the
complement of ``{Sold}`` is ``{C1, ∅}``.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    ConstraintViolation,
    Database,
    Relation,
    Warehouse,
    complement_thm22,
    evaluate,
    parse,
)
from repro.core.independence import verify_complement
from repro.views.analysis import join_complete_relations
from repro.views.psj import PSJView


class TestEmptinessProof:
    def test_c_sale_provably_empty(self, figure1_catalog_ri, sold_view):
        spec = complement_thm22(figure1_catalog_ri, [sold_view])
        assert spec.complements["Sale"].provably_empty
        assert not spec.complements["Emp"].provably_empty

    def test_join_completeness_analysis(self, figure1_catalog_ri):
        sold = PSJView(("Sale", "Emp"))
        assert join_complete_relations(sold, figure1_catalog_ri) == frozenset(
            {"Sale"}
        )

    def test_no_ri_no_emptiness(self, figure1_catalog, sold_view):
        spec = complement_thm22(figure1_catalog, [sold_view])
        assert not spec.complements["Sale"].provably_empty

    def test_inverse_drops_c_sale(self, figure1_catalog_ri, sold_view):
        spec = complement_thm22(figure1_catalog_ri, [sold_view])
        assert str(spec.inverses["Sale"]) == "pi[item, clerk](Sold)"
        assert "C_Sale" not in spec.warehouse_names()


class TestSemanticEmptiness:
    """On every RI-satisfying state, Sale - pi(Sold) really is empty."""

    def random_ri_state(self, seed: int):
        rng = random.Random(seed)
        clerks = [f"clerk{i}" for i in range(5)]
        emp_clerks = rng.sample(clerks, rng.randint(1, 5))
        emp = [(c, rng.randint(20, 60)) for c in emp_clerks]
        sale = [
            (f"item{rng.randrange(6)}", rng.choice(emp_clerks))
            for _ in range(rng.randint(0, 6))
        ]
        return {
            "Sale": Relation(("item", "clerk"), sale),
            "Emp": Relation(("clerk", "age"), emp),
        }

    def test_complement_correct_on_ri_states(self, figure1_catalog_ri, sold_view):
        spec = complement_thm22(figure1_catalog_ri, [sold_view])
        for seed in range(20):
            state = self.random_ri_state(seed)
            ok, problems = verify_complement(spec, state)
            assert ok, (seed, problems)

    def test_c_sale_expression_evaluates_empty(self, figure1_catalog_ri, sold_view):
        for seed in range(20):
            state = self.random_ri_state(seed)
            c2 = evaluate(parse("Sale minus pi[item, clerk](Sale join Emp)"), state)
            assert not c2

    def test_database_enforces_ri(self, figure1_catalog_ri):
        db = Database(figure1_catalog_ri)
        db.load("Emp", [("Mary", 23)])
        db.load("Sale", [("TV", "Mary")])
        with pytest.raises(ConstraintViolation):
            db.insert("Sale", [("PC", "Ghost")])


class TestMaintenanceWithoutCSale:
    def test_warehouse_roundtrip(self, figure1_catalog_ri):
        from repro import View

        wh = Warehouse.specify(
            figure1_catalog_ri, [View("Sold", parse("Sale join Emp"))]
        )
        db = Database(figure1_catalog_ri)
        db.load("Emp", [("Mary", 23), ("Paula", 32)])
        db.load("Sale", [("TV", "Mary")])
        wh.initialize(db)
        assert set(wh.state) == {"Sold", "C_Emp"}

        update = db.insert("Sale", [("Computer", "Paula")])
        wh.apply(update)
        assert wh.relation("Sold") == evaluate(parse("Sale join Emp"), db.state())
        assert wh.reconstruct("Sale") == db["Sale"]
        assert wh.reconstruct("Emp") == db["Emp"]
