"""Unit tests for the ``python -m repro`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "C_Emp" in out
        assert "Computer" in out


class TestSpec:
    def write_spec_file(self, tmp_path, inclusions=()):
        data = {
            "relations": [
                {"name": "Sale", "attributes": ["item", "clerk"]},
                {"name": "Emp", "attributes": ["clerk", "age"], "key": ["clerk"]},
            ],
            "inclusions": list(inclusions),
            "views": [{"name": "Sold", "definition": "Sale join Emp"}],
        }
        path = tmp_path / "schema.json"
        path.write_text(json.dumps(data))
        return str(path)

    def test_spec_output(self, tmp_path, capsys):
        path = self.write_spec_file(tmp_path)
        assert main(["spec", path]) == 0
        out = capsys.readouterr().out
        assert "C_Sale = Sale minus pi[item, clerk](Sold)" in out
        assert "minimality" in out
        assert "self-maintenance" in out

    def test_spec_with_ri_prunes(self, tmp_path, capsys):
        path = self.write_spec_file(
            tmp_path,
            inclusions=[
                {
                    "lhs": "Sale",
                    "lhs_attributes": ["clerk"],
                    "rhs": "Emp",
                    "rhs_attributes": ["clerk"],
                }
            ],
        )
        assert main(["spec", path]) == 0
        out = capsys.readouterr().out
        assert "provably empty" in out

    def test_spec_method_flag(self, tmp_path, capsys):
        path = self.write_spec_file(tmp_path)
        assert main(["spec", path, "--method", "trivial"]) == 0
        out = capsys.readouterr().out
        assert "method: trivial" in out


class TestTpcd:
    def test_tpcd_summary(self, capsys):
        assert main(["tpcd", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "SalesFact" in out
        assert "complements proven empty" in out


class TestArgErrors:
    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["nope"])
