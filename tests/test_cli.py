"""Unit tests for the ``python -m repro`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "C_Emp" in out
        assert "Computer" in out


class TestSpec:
    def write_spec_file(self, tmp_path, inclusions=()):
        data = {
            "relations": [
                {"name": "Sale", "attributes": ["item", "clerk"]},
                {"name": "Emp", "attributes": ["clerk", "age"], "key": ["clerk"]},
            ],
            "inclusions": list(inclusions),
            "views": [{"name": "Sold", "definition": "Sale join Emp"}],
        }
        path = tmp_path / "schema.json"
        path.write_text(json.dumps(data))
        return str(path)

    def test_spec_output(self, tmp_path, capsys):
        path = self.write_spec_file(tmp_path)
        assert main(["spec", path]) == 0
        out = capsys.readouterr().out
        assert "C_Sale = Sale minus pi[item, clerk](Sold)" in out
        assert "minimality" in out
        assert "self-maintenance" in out

    def test_spec_with_ri_prunes(self, tmp_path, capsys):
        path = self.write_spec_file(
            tmp_path,
            inclusions=[
                {
                    "lhs": "Sale",
                    "lhs_attributes": ["clerk"],
                    "rhs": "Emp",
                    "rhs_attributes": ["clerk"],
                }
            ],
        )
        assert main(["spec", path]) == 0
        out = capsys.readouterr().out
        assert "provably empty" in out

    def test_spec_method_flag(self, tmp_path, capsys):
        path = self.write_spec_file(tmp_path)
        assert main(["spec", path, "--method", "trivial"]) == 0
        out = capsys.readouterr().out
        assert "method: trivial" in out


class TestTpcd:
    def test_tpcd_summary(self, capsys):
        assert main(["tpcd", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "SalesFact" in out
        assert "complements proven empty" in out


class TestObs:
    def test_obs_explain_replays_figure1(self, capsys):
        assert main(["obs", "explain"]) == 0
        out = capsys.readouterr().out
        assert "initialize" in out
        assert "refresh" in out
        assert "fastpath=anti_join" in out
        assert "fastpath=semi_join" in out
        assert "warehouse.refreshes" in out  # metrics dump at the end

    def test_obs_explain_trace_out(self, tmp_path, capsys):
        path = tmp_path / "figure1.jsonl"
        assert main(["obs", "explain", "--trace-out", str(path)]) == 0
        lines = [line for line in path.read_text().splitlines() if line.strip()]
        records = [json.loads(line) for line in lines]
        assert any(r["name"] == "refresh" for r in records)
        assert any(r["name"] == "read" for r in records)

    def test_obs_report_on_trace_file(self, tmp_path, capsys):
        path = tmp_path / "figure1.jsonl"
        assert main(["obs", "explain", "--trace-out", str(path)]) == 0
        capsys.readouterr()  # discard the explain output
        assert main(["obs", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "trace(s)" in out
        assert "read:" in out  # per-relation read rows

    def test_obs_report_sort_and_limit(self, tmp_path, capsys):
        path = tmp_path / "figure1.jsonl"
        main(["obs", "explain", "--trace-out", str(path)])
        capsys.readouterr()
        assert main(["obs", "report", str(path), "--sort", "count", "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "trace(s)" in out

    def test_obs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["obs"])


class TestArgErrors:
    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["nope"])
