"""Integration tests: long mixed scenarios across the whole stack.

Each scenario wires sources, integrator, warehouse, query answering,
incremental maintenance, and (where applicable) star schemata and
aggregates, and checks global invariants after every step:

* the warehouse state equals the warehouse mapping of the source state;
* every base relation reconstructs exactly;
* a panel of queries answers identically at the warehouse and the sources.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    Catalog,
    Database,
    Relation,
    View,
    Warehouse,
    evaluate,
    parse,
    parse_condition,
)
from repro.core.aggregates import AggregateView, agg_sum, count
from repro.core.independence import warehouse_state
from repro.core.star import FactTable, star_specify
from repro.workloads import (
    random_catalog,
    random_database,
    random_update_stream,
    random_views,
    tpcd_instance,
)
from repro.workloads.tpcd import order_insert_rows


def check_invariants(wh: Warehouse, db: Database, queries=()):
    assert wh.state == warehouse_state(wh.spec, db.state())
    for name in db.catalog.relation_names():
        assert wh.reconstruct(name) == db[name], name
    for text in queries:
        query = parse(text)
        assert wh.answer(query) == evaluate(query, db.state()), text


class TestFigure1Scenario:
    QUERIES = (
        "pi[clerk](Sale) union pi[clerk](Emp)",
        "Sale join Emp",
        "Emp minus pi[clerk, age](Sale join Emp)",
    )

    def test_long_mixed_session(self, figure1_catalog, figure1_database, sold_view):
        wh = Warehouse.specify(figure1_catalog, [sold_view])
        wh.initialize(figure1_database)
        db = figure1_database
        rng = random.Random(7)
        items = ["TV set", "VCR", "PC", "Computer", "radio"]
        for step in range(25):
            action = rng.random()
            if action < 0.4:
                clerk = rng.choice(sorted(r[0] for r in db["Emp"].rows))
                update = db.insert("Sale", [(rng.choice(items), clerk)])
            elif action < 0.6:
                update = db.insert(
                    "Emp", [(f"clerk{step}", rng.randint(18, 65))]
                )
            elif action < 0.8 and db["Sale"]:
                victim = rng.choice(sorted(db["Sale"].rows, key=repr))
                update = db.delete("Sale", [victim])
            else:
                unreferenced = db["Emp"].rows - frozenset(
                    db["Sale"].project(("clerk",)).natural_join(db["Emp"]).project(
                        ("clerk", "age")
                    ).rows
                )
                if not unreferenced:
                    continue
                victim = sorted(unreferenced, key=repr)[0]
                update = db.delete("Emp", [victim])
            if update.is_empty():
                continue
            wh.apply(update)
            check_invariants(wh, db, self.QUERIES)


class TestRandomizedWorkloads:
    @pytest.mark.parametrize("seed", range(3))
    def test_random_schema_session(self, seed):
        catalog = random_catalog(seed)
        db = random_database(seed, catalog, rows_per_relation=10)
        views = random_views(seed, catalog, n_views=3)
        wh = Warehouse.specify(catalog, views)
        wh.initialize(db)
        for update in random_update_stream(seed, db, n_updates=8):
            db.apply(update)
            wh.apply(update)
            check_invariants(wh, db)

    @pytest.mark.parametrize("method", ["prop22", "thm22"])
    def test_methods_agree_on_reconstruction(self, method):
        catalog = random_catalog(5)
        db = random_database(5, catalog, rows_per_relation=10)
        views = random_views(5, catalog, n_views=3)
        wh = Warehouse.specify(catalog, views, method=method)
        wh.initialize(db)
        check_invariants(wh, db)


class TestTpcdScenario:
    def test_tpcd_session_with_aggregate(self):
        inst = tpcd_instance(scale=0.2, seed=11)
        wh = Warehouse.specify(inst.catalog, inst.views)
        wh.initialize(inst.database)
        wh.attach_aggregate(
            AggregateView(
                "RevenueBySegment",
                "SalesFact",
                ("mktsegment",),
                [count("orders"), agg_sum("price")],
            )
        )
        rng = random.Random(1)
        for _ in range(4):
            orders, lines = order_insert_rows(rng, inst.database, count=2)
            wh.apply(inst.database.insert("Orders", orders))
            wh.apply(inst.database.insert("Lineitem", lines))
        check_invariants(wh, inst.database)
        # The aggregate equals a from-scratch recomputation.
        reference = AggregateView(
            "Ref", "SalesFact", ("mktsegment",), [count("orders"), agg_sum("price")]
        )
        reference.recompute(wh.relation("SalesFact"))
        assert wh.aggregate("RevenueBySegment") == reference.table()


class TestStarScenario:
    def test_two_source_star_session(self):
        catalog = Catalog()
        catalog.relation("Customer", ("custkey", "segment"), key=("custkey",))
        for loc in ("N", "S"):
            name = f"Orders{loc}"
            catalog.relation(name, ("loc", "okey", "custkey", "price"), key=("okey",))
            catalog.inclusion(name, ("custkey",), "Customer")
            catalog.add_check(name, parse_condition(f"loc = '{loc}'"))
        db = Database(catalog)
        db.load("Customer", [(i, "RETAIL" if i % 2 else "CORP") for i in range(6)])
        db.load("OrdersN", [("N", i, i % 6, float(i)) for i in range(10, 16)])
        db.load("OrdersS", [("S", i, i % 6, float(i)) for i in range(30, 34)])

        fact = FactTable(
            "Sales",
            "loc",
            {
                "N": parse("OrdersN join Customer"),
                "S": parse("OrdersS join Customer"),
            },
        )
        spec = star_specify(catalog, [fact], [View("CustomerDim", parse("Customer"))])
        wh = Warehouse(spec)
        wh.initialize(db)

        queries = (
            "pi[okey, price](OrdersN) union pi[okey, price](OrdersS)",
            "OrdersN join Customer",
            "Customer",
        )
        check_invariants(wh, db, queries)

        wh.apply(db.insert("OrdersN", [("N", 99, 3, 42.0)]))
        wh.apply(db.delete("OrdersS", [("S", 30, 0, 30.0)]))
        wh.apply(db.insert("Customer", [(77, "CORP")]))
        check_invariants(wh, db, queries)
