"""Cross-module integration: star x persistence x hybrid x integrator.

These scenarios combine subsystems that the unit suites exercise in
isolation, checking that the composition holds the paper's invariants.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    Catalog,
    Database,
    View,
    Warehouse,
    evaluate,
    parse,
    parse_condition,
)
from repro.core.aggregates import AggregateView, agg_sum, count
from repro.core.hybrid import HybridWarehouse
from repro.core.independence import verify_complement, warehouse_state
from repro.core.star import FactTable, star_specify
from repro.integrator import Channel, ComplementIntegrator, Source
from repro.storage.persist import (
    load_warehouse,
    save_warehouse,
    spec_from_dict,
    spec_to_dict,
)
from repro.workloads import tpcd_instance
from repro.workloads.tpcd import order_insert_rows


def star_setting():
    catalog = Catalog()
    catalog.relation("Customer", ("custkey", "segment"), key=("custkey",))
    for loc in ("N", "S"):
        name = f"Orders{loc}"
        catalog.relation(name, ("loc", "okey", "custkey", "price"), key=("okey",))
        catalog.inclusion(name, ("custkey",), "Customer")
        catalog.add_check(name, parse_condition(f"loc = '{loc}'"))
    fact = FactTable(
        "Sales",
        "loc",
        {loc: parse(f"Orders{loc} join Customer") for loc in ("N", "S")},
    )
    spec = star_specify(catalog, [fact], [View("CustomerDim", parse("Customer"))])
    db = Database(catalog)
    db.load("Customer", [(1, "RETAIL"), (2, "CORP")])
    db.load("OrdersN", [("N", 10, 1, 100), ("N", 11, 2, 250)])
    db.load("OrdersS", [("S", 20, 1, 75)])
    return catalog, db, spec


class TestStarPersistence:
    def test_star_spec_roundtrips(self):
        catalog, db, spec = star_setting()
        rebuilt = spec_from_dict(spec_to_dict(spec))
        assert rebuilt.view_names() == spec.view_names()
        for relation in spec.inverses:
            assert rebuilt.inverses[relation] == spec.inverses[relation]
        # The union fact-table definition survives textual round-trip.
        (fact_view,) = [v for v in rebuilt.views if v.name == "Sales"]
        assert "union" in str(fact_view.definition)

    def test_star_warehouse_save_load_resume(self, tmp_path):
        catalog, db, spec = star_setting()
        warehouse = Warehouse(spec)
        warehouse.initialize(db)
        path = str(tmp_path / "star.json")
        save_warehouse(warehouse, path)

        resumed = load_warehouse(path)
        update = db.insert("OrdersS", [("S", 21, 2, 40)])
        resumed.apply(update)
        assert resumed.state == warehouse_state(resumed.spec, db.state())
        assert resumed.reconstruct("OrdersS") == db["OrdersS"]


class TestHybridAtScale:
    def test_hybrid_tpcd_orders_complement_virtual(self):
        inst = tpcd_instance(scale=0.3, seed=8)
        from repro import specify

        spec = specify(inst.catalog, inst.views)
        full = Warehouse(spec)
        full.initialize(inst.database)

        virtual_name = spec.complements["Orders"].name
        assert virtual_name in spec.complement_names()
        # Since SalesFact retains all of attr(Orders) (the Theorem 2.2 cover),
        # C_Orders only holds orders without lineitems — none in this instance.
        assert full.storage_by_relation()[virtual_name] == 0
        region_name = spec.complements["Region"].name
        hybrid = HybridWarehouse(
            spec,
            [virtual_name, region_name],
            source_access=lambda name: inst.database[name],
        )
        hybrid.initialize(inst.database)
        assert hybrid.storage_rows() < full.storage_rows()

        rng = random.Random(1)
        orders, lines = order_insert_rows(rng, inst.database, count=2)
        update = inst.database.insert("Orders", orders)
        hybrid.apply(update)
        full.apply(update)
        for name in hybrid.state:
            assert hybrid.state[name] == full.state[name], name
        # The virtual complement forced source round trips.
        assert hybrid.source_queries > 0
        assert hybrid.reconstruct("Orders") == inst.database["Orders"]


class TestStarThroughIntegratorPipeline:
    def test_multi_source_star_with_aggregate(self):
        catalog, _, spec = star_setting()
        channel = Channel()
        north = Source("NorthDB", catalog, ("OrdersN",), channel)
        south = Source("SouthDB", catalog, ("OrdersS",), channel)
        central = Source("CentralDB", catalog, ("Customer",), channel)
        central.load("Customer", [(1, "RETAIL"), (2, "CORP")])
        north.load("OrdersN", [("N", 10, 1, 100)])
        south.load("OrdersS", [("S", 20, 2, 75)])

        integrator = ComplementIntegrator.from_spec(spec)
        integrator.initialize([north, south, central])
        integrator.warehouse.attach_aggregate(
            AggregateView(
                "Revenue", "Sales", ("segment",), [count("n"), agg_sum("price")]
            )
        )

        north.insert("OrdersN", [("N", 11, 2, 300)])
        south.insert("OrdersS", [("S", 21, 1, 55)])
        central.insert("Customer", [(3, "GOV")])
        north.delete("OrdersN", [("N", 10, 1, 100)])
        integrator.process_all(channel)

        live = {
            "OrdersN": north.relation("OrdersN"),
            "OrdersS": south.relation("OrdersS"),
            "Customer": central.relation("Customer"),
        }
        assert integrator.warehouse.state == warehouse_state(spec, live)
        reference = AggregateView(
            "Ref", "Sales", ("segment",), [count("n"), agg_sum("price")]
        )
        reference.recompute(integrator.warehouse.relation("Sales"))
        assert integrator.warehouse.aggregate("Revenue") == reference.table()


class TestTwoFactTables:
    def test_orders_and_returns_facts(self):
        catalog = Catalog()
        catalog.relation("Customer", ("custkey", "segment"), key=("custkey",))
        for name in ("OrdersN", "ReturnsN"):
            catalog.relation(name, ("loc", "okey", "custkey", "price"), key=("okey",))
            catalog.inclusion(name, ("custkey",), "Customer")
            catalog.add_check(name, parse_condition("loc = 'N'"))
        sales = FactTable("Sales", "loc", {"N": parse("OrdersN join Customer")})
        returns = FactTable("Returns", "loc", {"N": parse("ReturnsN join Customer")})
        spec = star_specify(
            catalog, [sales, returns], [View("CustomerDim", parse("Customer"))]
        )
        assert {"Sales", "Returns", "CustomerDim"} <= set(spec.warehouse_names())

        db = Database(catalog)
        db.load("Customer", [(1, "RETAIL")])
        db.load("OrdersN", [("N", 1, 1, 10)])
        db.load("ReturnsN", [("N", 2, 1, 5)])
        ok, problems = verify_complement(spec, db.state())
        assert ok, problems

        warehouse = Warehouse(spec)
        warehouse.initialize(db)
        update = db.insert("ReturnsN", [("N", 3, 1, 7)])
        warehouse.apply(update)
        assert warehouse.state == warehouse_state(spec, db.state())
        assert warehouse.reconstruct("ReturnsN") == db["ReturnsN"]
