"""The acceptance gate for the fast path: the differential oracle is clean.

Fixed seed, so CI failures replay locally: rerun
``run_schema(seed, config)`` with the seed printed in the disagreement.
"""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError

from .harness import DifferentialConfig, run_differential, run_schema


class TestDifferentialOracle:
    def test_oracle_reports_zero_disagreements(self):
        config = DifferentialConfig()
        report = run_differential(config)
        assert report.schemas_run >= 20, report.summary()
        assert report.steps_run >= 200, report.summary()
        assert report.ok, "\n".join(str(d) for d in report.disagreements)

    def test_single_schema_run_is_deterministic(self):
        config = DifferentialConfig(n_updates=5)
        first = run_schema(config.seed, config)
        second = run_schema(config.seed, config)
        assert first == second

    def test_harness_detects_injected_divergence(self):
        """The oracle is only trustworthy if it can actually fail."""
        from repro import Relation

        from .harness import _diff_states

        good = {"V0": Relation(("a", "b"), [(1, 2)])}
        bad = {"V0": Relation(("a", "b"), [(1, 3)])}
        found = _diff_states(0, 0, "fast", good, "oracle", bad)
        assert len(found) == 1
        assert found[0].relation == "V0"
        missing = _diff_states(0, 0, "fast", good, "oracle", {})
        assert missing and "missing" in missing[0].detail
