"""Differential-testing oracle for the maintenance fast path."""
