"""The differential-testing oracle: five maintenance tracks, step-locked.

Caching and invalidation are the whole correctness risk of the fast path,
so this harness checks them the only way that scales: generate random
schemas, PSJ views, and valid update streams (``repro.workloads.generator``)
and assert, after *every* step, that five independent implementations agree
exactly:

1. **fast** — the production path: persistent
   :class:`~repro.algebra.evaluator.EvaluationCache` shared across
   refreshes, semi-/anti-join fast paths on;
2. **uncached** — the seed evaluator: fresh memo per refresh, fast paths
   off (:func:`~repro.core.maintenance.refresh_state` with ``cache=None``,
   ``fastpath=False``);
3. **oracle** — full recompute from sources: a mirror database advanced by
   each update, with every warehouse relation re-evaluated from its
   definition over base relations (no incremental machinery at all);
4. **columnar** — the engine axis: a second cached warehouse running the
   dictionary-coded batch kernels (``engine="columnar"``), replayed in
   lockstep with the tuple-set tracks. This is what lets
   ``REPRO_ENGINE=columnar`` default on eventually: every random workload
   must agree extensionally with the tuple engine after every step.
   Toggled by ``DifferentialConfig.columnar_track`` (on by default);
5. **compiled** — the plan-compiler axis: a warehouse with
   ``compile_plans=True`` replaying the same stream through certificate-
   driven fused refresh closures (:mod:`repro.compiler`). Specs the prover
   refuses to certify fall back to the interpreted path inside the same
   warehouse, so the track degrades to a second fast replay rather than
   skipping the schema. Toggled by ``DifferentialConfig.compiled_track``
   (on by default).

Any divergence is reported with enough context to replay it: the schema
seed, the step index, the relation, and the differing row sets.

Deterministic given its seed; used by ``tests/differential/`` and by the CI
smoke runner ``scripts/differential_smoke.py``.
"""

from __future__ import annotations

import random
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro import Warehouse, specify
from repro.algebra.evaluator import evaluate_all
from repro.core.maintenance import refresh_state
from repro.errors import ReproError
from repro.storage.relation import Relation
from repro.workloads.generator import (
    GeneratorConfig,
    random_catalog,
    random_database,
    random_update,
    random_views,
)


class DifferentialConfig(NamedTuple):
    """Knobs for one differential run (all defaults are CI-fast)."""

    n_schemas: int = 20
    n_updates: int = 12
    seed: int = 20260806
    rows_per_relation: int = 20
    batch_size: int = 3
    insert_fraction: float = 0.55
    n_views: int = 3
    method: str = "thm22"
    generator: GeneratorConfig = GeneratorConfig()
    max_schema_attempts: int = 200
    columnar_track: bool = True
    compiled_track: bool = True


class Disagreement(NamedTuple):
    """One detected divergence, with replay coordinates."""

    schema_seed: int
    step: int
    tracks: str  # e.g. "fast vs oracle"
    relation: str
    detail: str

    def __str__(self) -> str:
        return (
            f"schema seed {self.schema_seed}, step {self.step}: {self.tracks} "
            f"disagree on {self.relation}: {self.detail}"
        )


class DifferentialReport(NamedTuple):
    """The outcome of a run: coverage counters plus any disagreements."""

    schemas_run: int
    schemas_skipped: int
    steps_run: int
    disagreements: List[Disagreement]

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.disagreements)} DISAGREEMENTS"
        return (
            f"differential oracle: {status} — {self.schemas_run} schemas, "
            f"{self.steps_run} update steps ({self.schemas_skipped} schema "
            f"candidates skipped)"
        )


def _canonical_rows(relation: Relation) -> Tuple[tuple, ...]:
    attrs = tuple(sorted(relation.attribute_set))
    return tuple(sorted(relation.reorder(attrs).rows, key=repr))


def _diff_states(
    schema_seed: int,
    step: int,
    label_a: str,
    state_a: Dict[str, Relation],
    label_b: str,
    state_b: Dict[str, Relation],
) -> List[Disagreement]:
    tracks = f"{label_a} vs {label_b}"
    out: List[Disagreement] = []
    for name in sorted(set(state_a) | set(state_b)):
        if name not in state_a or name not in state_b:
            out.append(
                Disagreement(
                    schema_seed, step, tracks, name, "relation missing from one track"
                )
            )
            continue
        rows_a = _canonical_rows(state_a[name])
        rows_b = _canonical_rows(state_b[name])
        if rows_a != rows_b:
            only_a = set(rows_a) - set(rows_b)
            only_b = set(rows_b) - set(rows_a)
            out.append(
                Disagreement(
                    schema_seed,
                    step,
                    tracks,
                    name,
                    f"only in {label_a}: {sorted(only_a, key=repr)[:5]!r}, "
                    f"only in {label_b}: {sorted(only_b, key=repr)[:5]!r}",
                )
            )
    return out


def run_schema(
    schema_seed: int,
    config: DifferentialConfig,
    trace_sink=None,
) -> Optional[Tuple[int, List[Disagreement]]]:
    """One random schema: build the lockstep tracks, replay one update stream.

    Returns ``(steps_run, disagreements)``, or ``None`` when the random
    draw is unusable (specification failed, or the update generator could
    not produce a single valid update — both legitimate outcomes of random
    schema generation, counted as skips by :func:`run_differential`).

    ``trace_sink`` (a :class:`~repro.obs.trace.TraceCollector`, e.g. a
    :class:`~repro.obs.trace.JsonlSink`) enables tracing on the *fast*
    track and streams every refresh trace there — CI uploads the resulting
    JSONL as an artifact, so a differential failure comes with the full
    operator-level story of what the fast path executed.
    """
    rng = random.Random(schema_seed)
    catalog = random_catalog(rng, config.generator)
    database = random_database(
        rng, catalog, config.rows_per_relation, config.generator.domain_size
    )
    views = random_views(
        rng, catalog, n_views=config.n_views, domain_size=config.generator.domain_size
    )
    try:
        spec = specify(catalog, views, method=config.method)
    except ReproError:
        return None

    definitions = spec.definitions_over_sources()

    fast = Warehouse(spec, cached=True)
    if trace_sink is not None:
        fast.enable_tracing(capacity=1, sink=trace_sink)
    fast.initialize(database)
    uncached_state = {name: rel for name, rel in fast.state.items()}
    columnar = None
    if config.columnar_track:
        columnar = Warehouse(spec, cached=True, engine="columnar")
        columnar.initialize(database)
    compiled = None
    if config.compiled_track:
        compiled = Warehouse(spec, cached=True, compile_plans=True)
        compiled.initialize(database)
    mirror = database.copy()

    steps = 0
    disagreements: List[Disagreement] = []
    for step in range(config.n_updates):
        update = random_update(
            rng,
            mirror,  # advanced in place: the mirror IS the oracle's source state
            batch_size=config.batch_size,
            insert_fraction=config.insert_fraction,
            domain_size=config.generator.domain_size,
        )
        if update is None:
            break

        # Track 1: the fast path (persistent cache, fast paths on).
        fast.apply(update)
        # Track 2: the seed evaluator (fresh memo per refresh, no fast paths).
        uncached_state, _ = refresh_state(
            spec, uncached_state, update, cache=None, fastpath=False
        )
        # Track 3: the oracle — recompute every warehouse relation from the
        # advanced source state.
        oracle_state = evaluate_all(definitions, mirror.state(), fastpath=False)

        # Track 4 (engine axis): the columnar kernels, same update stream.
        if columnar is not None:
            columnar.apply(update)
        # Track 5 (compiler axis): certificate-driven fused closures.
        if compiled is not None:
            compiled.apply(update)

        disagreements.extend(
            _diff_states(schema_seed, step, "fast", fast.state, "uncached", uncached_state)
        )
        disagreements.extend(
            _diff_states(schema_seed, step, "fast", fast.state, "oracle", oracle_state)
        )
        if columnar is not None:
            disagreements.extend(
                _diff_states(
                    schema_seed, step, "fast", fast.state, "columnar", columnar.state
                )
            )
        if compiled is not None:
            disagreements.extend(
                _diff_states(
                    schema_seed, step, "fast", fast.state, "compiled", compiled.state
                )
            )
        steps += 1
    if steps == 0:
        return None
    return steps, disagreements


def run_differential(
    config: DifferentialConfig = DifferentialConfig(),
    trace_sink=None,
) -> DifferentialReport:
    """Run the full oracle: ``config.n_schemas`` usable schemas, step-locked.

    Unusable random draws are skipped (and counted) until the schema quota
    is met or ``config.max_schema_attempts`` candidates have been tried.
    ``trace_sink`` is forwarded to every :func:`run_schema` (JSONL trace
    output of the fast track).
    """
    schemas_run = 0
    skipped = 0
    steps_run = 0
    disagreements: List[Disagreement] = []
    for attempt in range(config.max_schema_attempts):
        if schemas_run >= config.n_schemas:
            break
        schema_seed = config.seed + attempt
        outcome = run_schema(schema_seed, config, trace_sink=trace_sink)
        if outcome is None:
            skipped += 1
            continue
        steps, found = outcome
        schemas_run += 1
        steps_run += steps
        disagreements.extend(found)
    return DifferentialReport(schemas_run, skipped, steps_run, disagreements)
