"""Differential replay of the shipped prover certificates.

The golden certificates under ``tests/analysis/golden/certificates`` are
claims: PROVED documents claim their inversion expressions reconstruct
every source relation from the warehouse image; REFUTED documents claim
their witness pair breaks injectivity. This suite re-checks both claims
from the JSON alone — parse the expressions back, regenerate random
constraint-satisfying databases, and replay — without trusting any state
the prover held when it wrote them. A certificate that stops replaying
is a real regression in the complement construction, the algebra
evaluator, or the serialization, caught here rather than in production.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.counterexample import Witness, verify_witness
from repro.analysis.prover import check_certificate
from repro.analysis.specfile import load_target
from repro.algebra.parser import parse
from repro.storage.relation import Relation

REPO = Path(__file__).parents[2]
SPEC_DIR = REPO / "examples" / "specs"
CERT_DIR = REPO / "tests" / "analysis" / "golden" / "certificates"

STEMS = sorted(path.stem.replace(".cert", "") for path in CERT_DIR.glob("*.cert.json"))


def load(stem):
    document = json.loads((CERT_DIR / f"{stem}.cert.json").read_text())
    target = load_target(str(SPEC_DIR / f"{stem}.json"))
    return document, target


def test_every_example_spec_has_a_certificate():
    specs = {path.stem for path in SPEC_DIR.glob("*.json")}
    assert specs == set(STEMS)


@pytest.mark.parametrize("stem", STEMS)
def test_certificate_replays_from_json_alone(stem):
    document, target = load(stem)
    if document["verdict"] != "PROVED":
        pytest.skip("only PROVED documents carry an inversion certificate")
    problems = check_certificate(target.catalog, document["certificate"])
    assert problems == [], f"{stem}: {problems}"


@pytest.mark.parametrize("stem", STEMS)
def test_witness_replays_from_json_alone(stem):
    document, target = load(stem)
    if document["verdict"] != "REFUTED":
        pytest.skip("only REFUTED documents carry a witness")
    witness_doc = document["witness"]
    attributes = {
        name: tuple(attrs) for name, attrs in witness_doc["attributes"].items()
    }

    def side(key):
        return {
            name: Relation(attributes[name], [tuple(row) for row in rows])
            for name, rows in witness_doc[key].items()
        }

    witness = Witness(side("left"), side("right"))
    definitions = {view.name: view.definition for view in target.views}
    assert verify_witness(target.catalog, definitions, witness) == []
    assert witness.max_rows_per_relation() <= 3
    assert witness_doc["differs_in"] == list(witness.differing_relations())


@pytest.mark.parametrize("stem", STEMS)
def test_proved_inversions_parse_and_stay_off_the_sources(stem):
    document, target = load(stem)
    if document["verdict"] != "PROVED":
        pytest.skip("only PROVED documents carry an inversion certificate")
    sources = set(target.catalog.relation_names())
    inversion = document["certificate"]["inversion"]
    assert set(inversion) == sources
    for relation, entry in inversion.items():
        expression = parse(entry["expression"])
        assert not (expression.relation_names() & sources), relation
        assert sorted(expression.relation_names() & set(entry["references"])) == list(
            entry["references"]
        )
