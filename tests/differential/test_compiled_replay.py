"""The compiler axis of the differential oracle, plus sanitizer coverage.

``test_differential.py`` already replays every workload with the compiled
track on (the :class:`DifferentialConfig` default). These tests pin the
axis itself: the track really runs compiled refresh closures, divergence
in a compiled plan is actually caught, ``REPRO_COMPILE=1`` wires through
the process default, and the ``REPRO_CHECK_INVARIANTS=1`` dataflow
sanitizer accepts the compiled traced path (span-name parity with the
interpreted refresh) across a full random replay.
"""

from __future__ import annotations

import pytest

from repro import Database, Warehouse, specify
from repro.views.psj import View
from repro.algebra.parser import parse
from repro.schema import Catalog

from .harness import DifferentialConfig, run_schema


SMOKE = DifferentialConfig(n_updates=8)


def _small_catalog():
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    return catalog


def _small_database(catalog):
    db = Database(catalog)
    db.load("Sale", [("TV", "Mary")])
    db.load("Emp", [("Mary", 23), ("Ken", 55)])
    return db


class TestCompiledTrack:
    def test_compiled_track_replays_clean(self):
        outcome = run_schema(SMOKE.seed, SMOKE)
        assert outcome is not None
        steps, disagreements = outcome
        assert steps > 0
        assert not disagreements, "\n".join(str(d) for d in disagreements)

    def test_track_is_toggleable_and_deterministic(self):
        config = SMOKE._replace(compiled_track=False)
        without = run_schema(config.seed, config)
        with_track = run_schema(SMOKE.seed, SMOKE)
        assert without is not None and with_track is not None
        # Same steps and (clean) disagreements either way: the compiled
        # track adds assertions, not workload.
        assert without == with_track

    def test_axis_detects_corrupted_closure(self, monkeypatch):
        """The axis is only trustworthy if a broken closure actually trips it.

        Compiled closures run on the columnar kernels regardless of the
        warehouse ``engine``, so corrupting the ``to_relation``
        materialization every fused program root goes through corrupts
        every compiled refresh. The reference tracks are pinned to the
        tuple engine and interpretation so only the compiled track
        executes the corruption — mirroring the corrupted-kernel test on
        the columnar axis.
        """
        import repro.compiler as compiler_mod
        from repro.storage import engine as engine_mod
        from repro.storage.columnar import ColumnarTable
        from repro.storage.relation import Relation

        monkeypatch.setattr(engine_mod, "DEFAULT_ENGINE", engine_mod.ENGINE_TUPLE)
        monkeypatch.setattr(compiler_mod, "DEFAULT_COMPILE", False)
        config = SMOKE._replace(columnar_track=False)

        original = ColumnarTable.to_relation

        def corrupted(self):
            result = original(self)
            if len(result) > 2:  # drop one row from large materializations
                return Relation(result.attributes, sorted(result.rows)[:-1])
            return result

        monkeypatch.setattr(ColumnarTable, "to_relation", corrupted)
        outcome = run_schema(config.seed, config)
        assert outcome is not None
        _, disagreements = outcome
        assert any("compiled" in d.tracks for d in disagreements)

    def test_sanitizer_passes_compiled_replay(self, monkeypatch):
        """REPRO_CHECK_INVARIANTS=1: compiled traces check out dataflow-ly.

        The sanitizer cross-checks each refresh's traced ``read`` spans
        against the static dataflow analysis; the compiled traced path
        only names warehouse relations and delta bindings in its ``read``
        spans, so Thm 4.1 holds by construction — this replay proves the
        span vocabulary stays sanitizer-compatible.
        """
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        outcome = run_schema(SMOKE.seed, SMOKE)
        assert outcome is not None
        steps, disagreements = outcome
        assert steps > 0 and not disagreements


class TestCompileDefaultWiring:
    def test_env_default_enables_compilation(self, monkeypatch):
        import repro.compiler as compiler_mod

        monkeypatch.setattr(compiler_mod, "DEFAULT_COMPILE", True)
        catalog = _small_catalog()
        spec = specify(catalog, [View("Sold", parse("Sale join Emp"))])
        warehouse = Warehouse(spec)
        warehouse.initialize(_small_database(catalog))
        warehouse.insert("Sale", [("Radio", "Ken")])
        assert warehouse.plan_compiler is not None

    def test_explicit_flag_overrides_default(self, monkeypatch):
        import repro.compiler as compiler_mod

        monkeypatch.setattr(compiler_mod, "DEFAULT_COMPILE", True)
        catalog = _small_catalog()
        spec = specify(catalog, [View("Sold", parse("Sale join Emp"))])
        warehouse = Warehouse(spec, compile_plans=False)
        warehouse.initialize(_small_database(catalog))
        warehouse.insert("Sale", [("Radio", "Ken")])
        assert warehouse.plan_compiler is None

    def test_environment_parsing(self):
        from repro.compiler import DEFAULT_COMPILE

        assert DEFAULT_COMPILE in (True, False)
