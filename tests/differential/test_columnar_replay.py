"""The engine axis of the differential oracle, plus sanitizer coverage.

``test_differential.py`` already replays every workload with the columnar
track on (the :class:`DifferentialConfig` default). These tests pin the
axis itself: the track really runs the columnar engine, divergence in a
kernel is actually caught, ``REPRO_ENGINE=columnar`` wires through the
process default, and the ``REPRO_CHECK_INVARIANTS=1`` dataflow sanitizer
accepts the columnar traced path (span-name parity with the tuple engine)
across a full random replay.
"""

from __future__ import annotations

import pytest

from repro import Warehouse, specify
from repro.views.psj import View
from repro.algebra.parser import parse
from repro.schema import Catalog

from .harness import DifferentialConfig, run_schema


SMOKE = DifferentialConfig(n_updates=8)


def _small_catalog():
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    return catalog


class TestColumnarTrack:
    def test_columnar_track_replays_clean(self):
        outcome = run_schema(SMOKE.seed, SMOKE)
        assert outcome is not None
        steps, disagreements = outcome
        assert steps > 0
        assert not disagreements, "\n".join(str(d) for d in disagreements)

    def test_track_is_toggleable_and_deterministic(self):
        config = SMOKE._replace(columnar_track=False)
        without = run_schema(config.seed, config)
        with_track = run_schema(SMOKE.seed, SMOKE)
        assert without is not None and with_track is not None
        # Same steps and (clean) disagreements either way: the columnar
        # track adds assertions, not workload.
        assert without == with_track

    def test_axis_detects_kernel_divergence(self, monkeypatch):
        """The axis is only trustworthy if a broken kernel actually trips it."""
        from repro.storage import engine as engine_mod
        from repro.storage.columnar import ColumnarTable

        # Pin the reference tracks to the tuple engine: under a columnar
        # process default (the CI engine-axis job) every track would run
        # the corrupted kernel and agree on the wrong answer.
        monkeypatch.setattr(engine_mod, "DEFAULT_ENGINE", engine_mod.ENGINE_TUPLE)

        original = ColumnarTable.union

        def corrupted(self, other):
            result = original(self, other)
            if len(result) > 2:  # drop one row from large unions
                return result._take(range(len(result._as_dense()) - 1))
            return result

        monkeypatch.setattr(ColumnarTable, "union", corrupted)
        outcome = run_schema(SMOKE.seed, SMOKE)
        assert outcome is not None
        _, disagreements = outcome
        assert any("columnar" in d.tracks for d in disagreements)

    def test_sanitizer_passes_columnar_replay(self, monkeypatch):
        """REPRO_CHECK_INVARIANTS=1: runtime read sets check out columnar-ly.

        The sanitizer cross-checks each refresh's traced ``read`` spans
        against the static dataflow analysis; the columnar traced path must
        emit the same span names/attributes for this to hold.
        """
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        outcome = run_schema(SMOKE.seed, SMOKE)
        assert outcome is not None
        steps, disagreements = outcome
        assert steps > 0 and not disagreements


class TestEngineDefaultWiring:
    def test_env_default_selects_columnar(self, monkeypatch):
        from repro.storage import engine as engine_mod

        monkeypatch.setattr(engine_mod, "DEFAULT_ENGINE", engine_mod.ENGINE_COLUMNAR)
        spec = specify(_small_catalog(), [View("Sold", parse("Sale join Emp"))])
        warehouse = Warehouse(spec)
        assert warehouse.engine == "columnar"

    def test_explicit_engine_overrides_default(self):
        spec = specify(_small_catalog(), [View("Sold", parse("Sale join Emp"))])
        assert Warehouse(spec, engine="tuple").engine == "tuple"
        assert Warehouse(spec, engine="columnar").engine == "columnar"

    def test_unknown_engine_rejected(self):
        from repro.errors import EvaluationError

        spec = specify(_small_catalog(), [View("Sold", parse("Sale join Emp"))])
        with pytest.raises(EvaluationError):
            Warehouse(spec, engine="vectorised")

    def test_environment_parsing(self):
        from repro.storage.engine import _engine_from_environment

        assert _engine_from_environment() in ("tuple", "columnar")
