"""Unit tests for :mod:`repro.workloads.tpcd`."""

from __future__ import annotations

import random

import pytest

from repro import Warehouse
from repro.core.independence import verify_complement, warehouse_state
from repro.workloads.tpcd import (
    order_insert_rows,
    standard_views,
    tpcd_catalog,
    tpcd_instance,
)


class TestCatalog:
    def test_skeleton(self):
        catalog = tpcd_catalog()
        assert set(catalog.relation_names()) == {
            "Region",
            "Nation",
            "Supplier",
            "Customer",
            "Part",
            "Orders",
            "Lineitem",
        }
        assert catalog.key("Lineitem") == ("orderkey", "linenumber")
        assert len(catalog.inclusions()) == 7

    def test_renamed_fk(self):
        catalog = tpcd_catalog()
        customer_fk = [
            ind for ind in catalog.inclusions() if ind.lhs == "Customer"
        ][0]
        assert customer_fk.lhs_attributes == ("cnationkey",)
        assert customer_fk.rhs_attributes == ("nationkey",)


class TestInstance:
    def test_scale_controls_sizes(self):
        small = tpcd_instance(scale=0.2, seed=1)
        large = tpcd_instance(scale=1.0, seed=1)
        assert small.sizes()["Orders"] < large.sizes()["Orders"]
        assert large.sizes()["Lineitem"] == 3 * large.sizes()["Orders"]

    def test_constraints_hold(self):
        inst = tpcd_instance(scale=0.3, seed=5)
        assert inst.database.satisfies_constraints()

    def test_deterministic(self):
        assert tpcd_instance(0.2, seed=9).sizes() == tpcd_instance(0.2, seed=9).sizes()


class TestWarehouseOverTpcd:
    def test_views_materialize_and_verify(self):
        inst = tpcd_instance(scale=0.3, seed=2)
        wh = Warehouse.specify(inst.catalog, inst.views)
        wh.initialize(inst.database)
        ok, problems = verify_complement(wh.spec, inst.database.state())
        assert ok, problems

    def test_lineitem_complement_pruned_by_fks(self):
        inst = tpcd_instance(scale=0.2, seed=2)
        wh = Warehouse.specify(inst.catalog, inst.views)
        # SalesFact retains all Lineitem attributes and the FK chain
        # guarantees join partners: no complement needed for Lineitem.
        assert wh.spec.complements["Lineitem"].provably_empty
        assert wh.spec.complements["Customer"].provably_empty  # dimension copy
        assert wh.spec.complements["Supplier"].provably_empty  # SupplierDim

    def test_order_stream_maintenance(self):
        inst = tpcd_instance(scale=0.2, seed=3)
        wh = Warehouse.specify(inst.catalog, inst.views)
        wh.initialize(inst.database)
        rng = random.Random(0)
        for _ in range(3):
            orders, lines = order_insert_rows(rng, inst.database, count=2)
            update = inst.database.insert("Orders", orders)
            wh.apply(update)
            update = inst.database.insert("Lineitem", lines)
            wh.apply(update)
        assert wh.state == warehouse_state(wh.spec, inst.database.state())

    def test_standard_views_shape(self):
        views = standard_views()
        assert [v.name for v in views] == [
            "SalesFact",
            "SupplierDim",
            "PartDim",
            "CustomerDim",
        ]
