"""Unit tests for :mod:`repro.workloads.generator`."""

from __future__ import annotations

import random

import pytest

from repro import Database, complement_thm22
from repro.core.independence import verify_complement
from repro.workloads import (
    GeneratorConfig,
    random_catalog,
    random_database,
    random_update_stream,
    random_views,
)


class TestRandomCatalog:
    @pytest.mark.parametrize("seed", range(6))
    def test_structure(self, seed):
        catalog = random_catalog(seed)
        assert len(catalog.relation_names()) == 4
        # IND graph acyclic by construction: inclusion_order succeeds.
        assert len(catalog.inclusion_order()) == 4

    def test_config_respected(self):
        config = GeneratorConfig(n_relations=6, ind_probability=0.0)
        catalog = random_catalog(0, config)
        assert len(catalog.relation_names()) == 6
        assert catalog.inclusions() == ()

    def test_deterministic(self):
        assert random_catalog(42).describe() == random_catalog(42).describe()

    def test_inds_target_keys(self):
        for seed in range(10):
            catalog = random_catalog(seed)
            for ind in catalog.inclusions():
                target_key = catalog.key(ind.rhs)
                assert target_key is not None
                assert set(target_key) <= set(ind.rhs_attributes)


class TestRandomDatabase:
    @pytest.mark.parametrize("seed", range(6))
    def test_constraints_satisfied(self, seed):
        catalog = random_catalog(seed)
        db = random_database(seed, catalog, rows_per_relation=20)
        assert db.satisfies_constraints()

    def test_rows_generated(self):
        catalog = random_catalog(1, GeneratorConfig(ind_probability=0.0))
        db = random_database(1, catalog, rows_per_relation=25)
        for name in catalog.relation_names():
            assert len(db[name]) > 0

    def test_deterministic(self):
        catalog = random_catalog(3)
        first = random_database(9, catalog)
        second = random_database(9, catalog)
        for name in catalog.relation_names():
            assert first[name] == second[name]


class TestRandomViews:
    @pytest.mark.parametrize("seed", range(6))
    def test_views_are_psj_and_typed(self, seed):
        catalog = random_catalog(seed)
        views = random_views(seed, catalog, n_views=4)
        scope = {s.name: s.attributes for s in catalog.schemas()}
        assert len(views) == 4
        for view in views:
            psj = view.psj(scope)
            assert set(psj.relations) <= set(catalog.relation_names())
            view.definition.attributes(scope)

    def test_prefix(self):
        catalog = random_catalog(0)
        views = random_views(0, catalog, n_views=2, prefix="W")
        assert [v.name for v in views] == ["W0", "W1"]


class TestRandomUpdateStream:
    @pytest.mark.parametrize("seed", range(4))
    def test_stream_replays_validly(self, seed):
        catalog = random_catalog(seed)
        db = random_database(seed, catalog, rows_per_relation=15)
        stream = random_update_stream(seed, db, n_updates=10)
        assert stream  # something was generated
        replay = db.copy()
        for update in stream:
            replay.apply(update)  # raises on violation
        assert replay.satisfies_constraints()

    def test_source_database_untouched(self):
        catalog = random_catalog(2)
        db = random_database(2, catalog)
        before = db.state()
        random_update_stream(2, db, n_updates=5)
        assert db.state() == before


class TestEndToEndRandom:
    """The generators exist to feed the complement machinery: close the loop."""

    @pytest.mark.parametrize("seed", range(5))
    def test_complement_and_maintenance_on_random_workload(self, seed):
        from repro.core.independence import warehouse_state
        from repro.core.maintenance import refresh_state

        catalog = random_catalog(seed)
        db = random_database(seed, catalog, rows_per_relation=12)
        views = random_views(seed, catalog, n_views=3)
        spec = complement_thm22(catalog, views)
        ok, problems = verify_complement(spec, db.state())
        assert ok, problems

        warehouse = warehouse_state(spec, db.state())
        for update in random_update_stream(seed, db, n_updates=6):
            db.apply(update)
            warehouse, _ = refresh_state(spec, warehouse, update)
            assert warehouse == warehouse_state(spec, db.state())
