"""Unit tests for :mod:`repro.workloads.queries` + Theorem 3.1 at random.

The generator's queries are arbitrary well-typed relational expressions;
each must answer identically at the warehouse and at the sources —
Definition 3.1's universal quantifier, sampled broadly.
"""

from __future__ import annotations

import pytest

from repro import Warehouse, evaluate
from repro.core.translation import answer_query
from repro.core.independence import warehouse_state
from repro.workloads import random_catalog, random_database, random_views
from repro.workloads.queries import QueryGenerator


class TestGenerator:
    def test_queries_are_well_typed(self):
        catalog = random_catalog(1)
        generator = QueryGenerator(catalog)
        scope = {s.name: s.attributes for s in catalog.schemas()}
        for query in generator.queries(30, seed=4):
            query.attributes(scope)  # must not raise

    def test_deterministic_given_seed(self):
        catalog = random_catalog(1)
        generator = QueryGenerator(catalog)
        first = [str(q) for q in generator.queries(10, seed=7)]
        second = [str(q) for q in generator.queries(10, seed=7)]
        assert first == second

    def test_variety(self):
        catalog = random_catalog(1)
        generator = QueryGenerator(catalog, max_depth=3)
        kinds = {type(q).__name__ for q in generator.queries(60, seed=0)}
        assert len(kinds) >= 4  # not collapsing to one operator


class TestTheorem31AtRandom:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_queries_commute(self, seed):
        catalog = random_catalog(seed)
        db = random_database(seed, catalog, rows_per_relation=12)
        views = random_views(seed, catalog, n_views=3)
        wh = Warehouse.specify(catalog, views)
        wh.initialize(db)
        generator = QueryGenerator(catalog, constants=[0, 1, 2, 3])
        for index, query in enumerate(generator.queries(25, seed=seed)):
            expected = evaluate(query, db.state())
            got = wh.answer(query)
            assert got == expected, (seed, index, str(query))

    def test_commutes_after_updates(self):
        from repro.workloads import random_update_stream

        catalog = random_catalog(2)
        db = random_database(2, catalog, rows_per_relation=12)
        views = random_views(2, catalog, n_views=3)
        wh = Warehouse.specify(catalog, views)
        wh.initialize(db)
        for update in random_update_stream(2, db, n_updates=5):
            db.apply(update)
            wh.apply(update)
        generator = QueryGenerator(catalog, constants=[0, 1, 2, 3])
        for index, query in enumerate(generator.queries(20, seed=9)):
            assert wh.answer(query) == evaluate(query, db.state()), (
                index,
                str(query),
            )

    def test_optimized_and_plain_translation_agree(self):
        from repro.core.translation import translate_query

        catalog = random_catalog(3)
        db = random_database(3, catalog, rows_per_relation=12)
        views = random_views(3, catalog, n_views=3)
        wh = Warehouse.specify(catalog, views)
        wh.initialize(db)
        generator = QueryGenerator(catalog, constants=[0, 1, 2])
        state = wh.state
        for query in generator.queries(20, seed=5):
            plain = evaluate(translate_query(wh.spec, query), state)
            fast = evaluate(
                translate_query(wh.spec, query, optimized=True), state
            )
            assert plain == fast, str(query)


class TestTotalComparisons:
    """Mixed-type ordered comparisons must not crash (total ordering)."""

    def test_ordered_comparison_across_types(self):
        from repro import Relation, parse

        rel = Relation(("k", "v"), [("a", 1), (2, 3), (None, 0)])
        result = evaluate(parse("sigma[k < 10](R)"), {"R": rel})
        # Deterministic, non-crashing; ints compare natively.
        assert (2, 3) in result

    def test_total_order_is_consistent(self):
        from repro.algebra.conditions import _OPS

        lt = _OPS["<"]
        ge = _OPS[">="]
        values = ["x", 1, 2.5, None, (1, 2)]
        for a in values:
            for b in values:
                assert lt(a, b) == (not ge(a, b))
