"""Unit tests for :mod:`repro.algebra.expressions`."""

from __future__ import annotations

import pytest

from repro import ExpressionError, attr, const
from repro.algebra.expressions import (
    Difference,
    Empty,
    Join,
    Project,
    RelationRef,
    Rename,
    Select,
    Union,
    difference,
    empty,
    join,
    project,
    rel,
    rename,
    scope_of,
    select,
    union,
)
from repro.algebra.conditions import TRUE

SCOPE = {"Sale": ("item", "clerk"), "Emp": ("clerk", "age")}


class TestSchemaComputation:
    def test_relation_ref(self):
        assert rel("Sale").attributes(SCOPE) == ("item", "clerk")

    def test_unknown_relation(self):
        with pytest.raises(ExpressionError):
            rel("Nope").attributes(SCOPE)

    def test_join_merges_attributes(self):
        expr = join(rel("Sale"), rel("Emp"))
        assert expr.attributes(SCOPE) == ("item", "clerk", "age")

    def test_project_checks_attributes(self):
        expr = project(rel("Sale"), ("clerk",))
        assert expr.attributes(SCOPE) == ("clerk",)
        with pytest.raises(ExpressionError):
            project(rel("Sale"), ("age",)).attributes(SCOPE)

    def test_select_checks_condition_attributes(self):
        good = Select(rel("Emp"), attr("age") > const(20))
        assert good.attributes(SCOPE) == ("clerk", "age")
        bad = Select(rel("Sale"), attr("age") > const(20))
        with pytest.raises(ExpressionError):
            bad.attributes(SCOPE)

    def test_union_requires_same_attribute_set(self):
        good = union(project(rel("Sale"), ("clerk",)), project(rel("Emp"), ("clerk",)))
        assert good.attributes(SCOPE) == ("clerk",)
        bad = union(rel("Sale"), rel("Emp"))
        with pytest.raises(ExpressionError):
            bad.attributes(SCOPE)

    def test_difference_requires_same_attribute_set(self):
        bad = difference(rel("Sale"), rel("Emp"))
        with pytest.raises(ExpressionError):
            bad.attributes(SCOPE)

    def test_rename(self):
        expr = rename(rel("Emp"), {"age": "years"})
        assert expr.attributes(SCOPE) == ("clerk", "years")

    def test_rename_collision(self):
        expr = Rename(rel("Emp"), {"age": "clerk"})
        with pytest.raises(ExpressionError):
            expr.attributes(SCOPE)

    def test_empty_has_fixed_schema(self):
        assert empty(("a", "b")).attributes(SCOPE) == ("a", "b")


class TestBuilders:
    def test_select_true_is_identity(self):
        assert select(rel("Sale"), TRUE) == rel("Sale")

    def test_rename_identity_is_identity(self):
        assert rename(rel("Sale"), {"item": "item"}) == rel("Sale")

    def test_nary_join_left_deep(self):
        expr = join(rel("A"), rel("B"), rel("C"))
        assert isinstance(expr, Join)
        assert isinstance(expr.left, Join)

    def test_nary_union(self):
        expr = union(rel("A"), rel("B"), rel("C"))
        assert isinstance(expr, Union)


class TestStructure:
    def test_equality_and_hash(self):
        first = project(join(rel("Sale"), rel("Emp")), ("clerk",))
        second = project(join(rel("Sale"), rel("Emp")), ("clerk",))
        assert first == second
        assert hash(first) == hash(second)

    def test_union_equality_commutative(self):
        assert union(rel("A"), rel("B")) == union(rel("B"), rel("A"))

    def test_difference_not_commutative(self):
        assert difference(rel("A"), rel("B")) != difference(rel("B"), rel("A"))

    def test_projection_equality_ignores_order(self):
        assert project(rel("Sale"), ("item", "clerk")) == project(
            rel("Sale"), ("clerk", "item")
        )

    def test_relation_names(self):
        expr = union(
            project(join(rel("Sale"), rel("Emp")), ("clerk",)),
            project(rel("C1"), ("clerk",)),
        )
        assert expr.relation_names() == frozenset({"Sale", "Emp", "C1"})

    def test_walk_and_size(self):
        expr = project(join(rel("Sale"), rel("Emp")), ("clerk",))
        assert expr.size() == 4
        kinds = [type(node).__name__ for node in expr.walk()]
        assert kinds[0] == "Project"

    def test_with_children(self):
        expr = join(rel("A"), rel("B"))
        rebuilt = expr.with_children((rel("X"), rel("Y")))
        assert rebuilt == join(rel("X"), rel("Y"))


class TestScopeOf:
    def test_scope_of_state(self):
        from repro import Relation

        state = {"R": Relation(("a", "b"), [])}
        assert scope_of(state) == {"R": ("a", "b")}

    def test_scope_of_catalog(self):
        from repro import Catalog

        catalog = Catalog()
        catalog.relation("R", ("a", "b"))
        assert scope_of(catalog) == {"R": ("a", "b")}

    def test_scope_of_plain_mapping(self):
        assert scope_of({"R": ["a", "b"]}) == {"R": ("a", "b")}


class TestDisplay:
    def test_str_matches_grammar(self):
        expr = project(
            Select(join(rel("Sale"), rel("Emp")), attr("age") > const(21)),
            ("item", "age"),
        )
        assert str(expr) == "pi[item, age](sigma[age > 21](Sale join Emp))"

    def test_union_of_differences_parenthesized(self):
        expr = union(difference(rel("A"), rel("B")), rel("C"))
        assert str(expr) == "(A minus B) union C"

    def test_join_of_union_parenthesized(self):
        expr = join(union(rel("A"), rel("B")), rel("C"))
        assert str(expr) == "(A union B) join C"
