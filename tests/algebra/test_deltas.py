"""Unit tests for :mod:`repro.algebra.deltas`.

Each rule is checked semantically: for random states and random effective
deltas, the derived insert/delete expressions must evaluate exactly to
``new - old`` and ``old - new``.
"""

from __future__ import annotations

import random

import pytest

from repro import Relation, evaluate, parse
from repro.algebra.deltas import (
    del_name,
    delta_scope,
    derive_delta,
    ins_name,
    new_value_expression,
)

SCOPE = {"R": ("a", "b"), "S": ("b", "c"), "T": ("a", "b")}

EXPRESSIONS = [
    "R",
    "sigma[a = 1](R)",
    "pi[a](R)",
    "pi[b](R)",
    "R join S",
    "pi[a, c](R join S)",
    "R union T",
    "R minus T",
    "T minus R",
    "rho[a -> x](R)",
    "pi[b](R) union pi[b](S) join empty[b]",
    "(R union T) minus sigma[a = 0](R)",
    "pi[a]((R minus T) join S)",
    "sigma[b >= 1](R join S) minus (T join S)",
]


def random_state_and_deltas(seed: int, updated):
    rng = random.Random(seed)
    state = {}
    bindings = {}
    for name, attrs in SCOPE.items():
        rows = {
            tuple(rng.randrange(3) for _ in attrs) for _ in range(rng.randint(0, 6))
        }
        relation = Relation(attrs, rows)
        state[name] = relation
        if name in updated:
            candidates = [
                tuple(rng.randrange(3) for _ in attrs) for _ in range(4)
            ]
            inserts = Relation(attrs, [c for c in candidates if c not in relation])
            deletes_pool = sorted(relation.rows, key=repr)
            deletes = Relation(
                attrs,
                rng.sample(deletes_pool, min(len(deletes_pool), rng.randint(0, 2))),
            )
            bindings[ins_name(name)] = inserts
            bindings[del_name(name)] = deletes
    return state, bindings


def new_state(state, bindings, updated):
    out = dict(state)
    for name in updated:
        out[name] = (
            state[name].difference(bindings[del_name(name)]).union(
                bindings[ins_name(name)]
            )
        )
    return out


@pytest.mark.parametrize("text", EXPRESSIONS)
@pytest.mark.parametrize("updated", [("R",), ("S",), ("R", "T"), ("R", "S", "T")])
def test_deltas_are_exact(text, updated):
    expr = parse(text)
    if not (set(updated) & expr.relation_names()):
        pytest.skip("update does not touch the expression")
    derived = derive_delta(expr, updated, SCOPE)
    for seed in range(6):
        state, bindings = random_state_and_deltas(seed, updated)
        combined = dict(state)
        combined.update(bindings)
        old_value = evaluate(expr, state)
        updated_state = new_state(state, bindings, updated)
        new_value = evaluate(expr, updated_state)
        inserts = evaluate(derived.inserts, combined)
        deletes = evaluate(derived.deletes, combined)
        assert inserts == new_value.difference(old_value), (text, seed)
        assert deletes == old_value.difference(new_value), (text, seed)


class TestHelpers:
    def test_delta_names(self):
        assert ins_name("Sale") == "Sale__ins"
        assert del_name("Sale") == "Sale__del"

    def test_delta_scope_extends(self):
        extended = delta_scope(SCOPE, ["R"])
        assert extended["R__ins"] == ("a", "b")
        assert extended["R__del"] == ("a", "b")

    def test_delta_scope_unknown_relation(self):
        from repro import ExpressionError

        with pytest.raises(ExpressionError):
            delta_scope(SCOPE, ["Nope"])

    def test_new_value_expression(self):
        expr = new_value_expression(parse("R join S"), ["R"])
        assert str(expr) == "((R minus R__del) union R__ins) join S"

    def test_unchanged_relation_has_empty_deltas(self):
        derived = derive_delta(parse("S"), ["R"], SCOPE)
        assert str(derived.inserts) == "empty[b, c]"
        assert str(derived.deletes) == "empty[b, c]"

    def test_simplification_removes_unchanged_branches(self):
        derived = derive_delta(parse("R join S"), ["R"], SCOPE)
        # Only the R-side delta branch survives.
        assert str(derived.inserts) == "R__ins join S"
        assert str(derived.deletes) == "R__del join S"

    def test_unsimplified_mode(self):
        derived = derive_delta(parse("R join S"), ["R"], SCOPE, simplified=False)
        assert "S__ins" not in str(derived.inserts)
        assert "empty" in str(derived.inserts)
