"""Unit tests for :mod:`repro.algebra.containment`.

Exact containments are cross-checked against brute-force evaluation over
exhaustive small states.
"""

from __future__ import annotations

import itertools

import pytest

from repro import Relation, evaluate, parse
from repro.algebra.containment import (
    UnsupportedFragment,
    is_contained_in,
    is_equivalent,
    to_union_of_cqs,
)

SCOPE = {"R": ("A", "B"), "S": ("B", "C")}


def exhaustive_states(values=(0, 1, 2)):
    # Three values so that unions of selections over {0, 1} do not
    # accidentally cover the whole domain (containment is over ALL states).
    r_rows = list(itertools.product(values, repeat=2))
    states = []
    for r_size in range(3):
        for r_combo in itertools.combinations(r_rows, r_size):
            for s_size in range(3):
                for s_combo in itertools.combinations(r_rows, s_size):
                    states.append(
                        {
                            "R": Relation(("A", "B"), r_combo),
                            "S": Relation(("B", "C"), s_combo),
                        }
                    )
    return states


def brute_force_contained(sub, sup):
    for state in exhaustive_states():
        left = evaluate(sub, state)
        right = evaluate(sup, state)
        if left.attribute_set != right.attribute_set:
            return False
        if not (left.rows <= left._aligned_rows(right)):
            return False
    return True


CASES = [
    ("pi[A](R join S)", "pi[A](R)"),
    ("pi[A](R)", "pi[A](R join S)"),
    ("sigma[A = 0](R)", "R"),
    ("R", "sigma[A = 0](R)"),
    ("pi[B](R)", "pi[B](S)"),
    ("pi[B](sigma[A = 0](R))", "pi[B](R)"),
    ("pi[A, B](R join S)", "R"),
    ("R", "pi[A, B](R join S)"),
    ("pi[B](R join S)", "pi[B](R) union pi[B](S)"),
    ("sigma[A = 0](R) union sigma[A = 1](R)", "R"),
    ("R", "sigma[A = 0](R) union sigma[A = 1](R)"),
    ("pi[A](sigma[B = 0](R))", "pi[A](R)"),
]


@pytest.mark.parametrize("sub_text,sup_text", CASES)
def test_matches_brute_force(sub_text, sup_text):
    sub, sup = parse(sub_text), parse(sup_text)
    exact = is_contained_in(sub, sup, SCOPE)
    brute = brute_force_contained(sub, sup)
    assert exact == brute, (sub_text, sup_text, exact, brute)


class TestKnownResults:
    def test_join_projection_containment(self):
        assert is_contained_in(parse("pi[A](R join S)"), parse("pi[A](R)"), SCOPE)
        assert not is_contained_in(parse("pi[A](R)"), parse("pi[A](R join S)"), SCOPE)

    def test_selection_containment(self):
        assert is_contained_in(parse("sigma[A = 0](R)"), parse("R"), SCOPE)

    def test_equivalence_of_reordered_joins(self):
        scope = {"R": ("A", "B"), "S": ("B", "C"), "T": ("C", "D")}
        left = parse("(R join S) join T")
        right = parse("R join (S join T)")
        assert is_equivalent(left, right, scope)

    def test_union_containment_per_disjunct(self):
        sub = parse("sigma[A = 0](R) union sigma[A = 1](R)")
        assert is_contained_in(sub, parse("R"), SCOPE)

    def test_selfjoin_reduction(self):
        # R join R == R (no renaming), so pi[A](R join R) == pi[A](R).
        assert is_equivalent(parse("pi[A](R join R)"), parse("pi[A](R)"), SCOPE)

    def test_unsatisfiable_selection_contained_in_anything(self):
        sub = parse("sigma[A = 0 and A = 1](R)")
        assert is_contained_in(sub, parse("sigma[A = 5](R)"), SCOPE)

    def test_constants_must_match(self):
        assert not is_contained_in(
            parse("sigma[A = 0](R)"), parse("sigma[A = 1](R)"), SCOPE
        )

    def test_attribute_equality_condition(self):
        assert is_contained_in(parse("sigma[A = B](R)"), parse("R"), SCOPE)
        assert not is_contained_in(parse("R"), parse("sigma[A = B](R)"), SCOPE)


class TestFragmentLimits:
    def test_difference_unsupported(self):
        with pytest.raises(UnsupportedFragment):
            is_contained_in(parse("R minus R"), parse("R"), SCOPE)

    def test_inequality_unsupported(self):
        with pytest.raises(UnsupportedFragment):
            is_contained_in(parse("sigma[A < 1](R)"), parse("R"), SCOPE)

    def test_empty_compiles_to_no_disjuncts(self):
        assert to_union_of_cqs(parse("empty[A, B]"), SCOPE) == []
        assert is_contained_in(parse("empty[A, B]"), parse("R"), SCOPE)

    def test_rename_supported(self):
        scope = {"R": ("A", "B")}
        assert is_contained_in(
            parse("rho[B -> C](R)"), parse("rho[B -> C](R)"), scope
        )
