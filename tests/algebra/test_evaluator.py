"""Unit tests for :mod:`repro.algebra.evaluator`."""

from __future__ import annotations

import pytest

from repro import EvaluationError, Relation, attr, const, evaluate, parse
from repro.algebra.evaluator import evaluate_all


@pytest.fixture
def state():
    return {
        "Sale": Relation(("item", "clerk"), [("TV", "Mary"), ("PC", "John")]),
        "Emp": Relation(("clerk", "age"), [("Mary", 23), ("John", 25), ("Paula", 32)]),
    }


class TestBasics:
    def test_relation_ref(self, state):
        assert evaluate(parse("Sale"), state) == state["Sale"]

    def test_missing_relation(self, state):
        with pytest.raises(EvaluationError):
            evaluate(parse("Nope"), state)

    def test_project(self, state):
        result = evaluate(parse("pi[clerk](Sale)"), state)
        assert result.to_set() == {("Mary",), ("John",)}

    def test_select(self, state):
        result = evaluate(parse("sigma[age > 24](Emp)"), state)
        assert result.to_set() == {("John", 25), ("Paula", 32)}

    def test_join(self, state):
        result = evaluate(parse("Sale join Emp"), state)
        assert result.to_set() == {("TV", "Mary", 23), ("PC", "John", 25)}

    def test_union(self, state):
        result = evaluate(parse("pi[clerk](Sale) union pi[clerk](Emp)"), state)
        assert result.to_set() == {("Mary",), ("John",), ("Paula",)}

    def test_difference(self, state):
        result = evaluate(parse("pi[clerk](Emp) minus pi[clerk](Sale)"), state)
        assert result.to_set() == {("Paula",)}

    def test_rename(self, state):
        result = evaluate(parse("rho[age -> years](Emp)"), state)
        assert result.attribute_set == {"clerk", "years"}

    def test_empty_literal(self, state):
        result = evaluate(parse("empty[item, clerk]"), state)
        assert not result
        assert result.attribute_set == {"item", "clerk"}


class TestComposite:
    def test_nested_expression(self, state):
        query = parse("pi[age](sigma[item = 'TV'](Sale) join Emp)")
        assert evaluate(query, state).to_set() == {(23,)}

    def test_join_condition_spanning_relations(self, state):
        query = parse("sigma[age > 24](Sale join Emp)")
        assert evaluate(query, state).to_set() == {("PC", "John", 25)}

    def test_cartesian_product_via_disjoint_join(self):
        state = {
            "A": Relation(("x",), [(1,), (2,)]),
            "B": Relation(("y",), [(8,), (9,)]),
        }
        result = evaluate(parse("A join B"), state)
        assert len(result) == 4


def _join_methods():
    """The (class, join name, semi-join name) of the *active* engine.

    These tests count physical operator invocations, so they must patch
    whichever class the resolved engine actually dispatches to — Relation
    methods for the tuple engine, ColumnarTable kernels under
    ``REPRO_ENGINE=columnar``.
    """
    from repro.storage.columnar import ColumnarTable
    from repro.storage.engine import ENGINE_COLUMNAR, resolve_engine

    if resolve_engine(None) == ENGINE_COLUMNAR:
        return ColumnarTable, "join", "semi_join"
    return Relation, "natural_join", "semi_join"


class TestMemoization:
    def test_shared_subtrees_evaluated_once(self, state, monkeypatch):
        calls = []
        cls, join_name, _ = _join_methods()
        original = getattr(cls, join_name)

        def counting(self, other):
            calls.append(1)
            return original(self, other)

        monkeypatch.setattr(cls, join_name, counting)
        # The projection spans both join operands, so the semi-join fast
        # path does not apply and the join itself is materialized (once).
        query = parse(
            "pi[item, age](Sale join Emp) union pi[item, age](Sale join Emp)"
        )
        evaluate(query, state)
        assert len(calls) == 1

    def test_single_operand_projection_uses_semi_join(self, state, monkeypatch):
        joins, semis = [], []
        cls, join_name, semi_name = _join_methods()
        original_join = getattr(cls, join_name)
        original_semi = getattr(cls, semi_name)

        def counting_join(self, other):
            joins.append(1)
            return original_join(self, other)

        def counting_semi(self, other):
            semis.append(1)
            return original_semi(self, other)

        monkeypatch.setattr(cls, join_name, counting_join)
        monkeypatch.setattr(cls, semi_name, counting_semi)
        result = evaluate(parse("pi[clerk](Sale join Emp)"), state)
        assert result.to_set() == {("Mary",), ("John",)}
        assert joins == [] and semis == [1]

    def test_shared_cache_across_calls(self, state):
        cache = {}
        first = evaluate(parse("Sale join Emp"), state, cache=cache)
        second = evaluate(parse("Sale join Emp"), state, cache=cache)
        assert first is second

    def test_evaluate_all(self, state):
        results = evaluate_all(
            {"a": parse("Sale join Emp"), "b": parse("pi[clerk](Sale join Emp)")},
            state,
        )
        assert set(results) == {"a", "b"}
        assert results["b"].to_set() == {("Mary",), ("John",)}
