"""Unit tests for :mod:`repro.algebra.parser`."""

from __future__ import annotations

import pytest

from repro import ParseError, parse, parse_condition
from repro.algebra.expressions import (
    Difference,
    Empty,
    Join,
    Project,
    Rename,
    Select,
    Union,
)
from repro.algebra.conditions import And, Comparison, Not, Or


class TestExpressionGrammar:
    def test_relation(self):
        assert parse("Sale").name == "Sale"

    def test_join_precedence_over_union(self):
        expr = parse("A join B union C join D")
        assert isinstance(expr, Union)
        assert isinstance(expr.left, Join)
        assert isinstance(expr.right, Join)

    def test_left_associativity(self):
        expr = parse("A minus B minus C")
        assert isinstance(expr, Difference)
        assert isinstance(expr.left, Difference)

    def test_parentheses(self):
        expr = parse("A minus (B minus C)")
        assert isinstance(expr.right, Difference)

    def test_projection(self):
        expr = parse("pi[item, clerk](Sale)")
        assert isinstance(expr, Project)
        assert expr.attrs == ("item", "clerk")

    def test_selection(self):
        expr = parse("sigma[age > 21](Emp)")
        assert isinstance(expr, Select)
        assert isinstance(expr.condition, Comparison)

    def test_rename(self):
        expr = parse("rho[age -> years, clerk -> name](Emp)")
        assert isinstance(expr, Rename)
        assert expr.mapping == {"age": "years", "clerk": "name"}

    def test_empty(self):
        expr = parse("empty[a, b]")
        assert isinstance(expr, Empty)
        assert expr.attrs == ("a", "b")

    def test_errors(self):
        for text in ("", "pi[](R)", "A join", "sigma[age >](R)", "pi[a(R)", "A B"):
            with pytest.raises(ParseError):
                parse(text)

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse("A ? B")


class TestConditionGrammar:
    def test_precedence_and_over_or(self):
        condition = parse_condition("a = 1 and b = 2 or c = 3")
        assert isinstance(condition, Or)
        assert isinstance(condition.parts[0], And)

    def test_not(self):
        condition = parse_condition("not (a = 1)")
        assert isinstance(condition, Not)

    def test_literals(self):
        assert parse_condition("true").same_as(parse_condition("true"))
        assert str(parse_condition("false")) == "false"

    def test_numbers(self):
        condition = parse_condition("a = -3")
        assert condition.right.value == -3
        condition = parse_condition("a = 2.5")
        assert condition.right.value == 2.5

    def test_strings_with_escapes(self):
        condition = parse_condition("name = 'O\\'Brien'")
        assert condition.right.value == "O'Brien"

    def test_attribute_comparison(self):
        condition = parse_condition("a <= b")
        assert condition.op == "<="


class TestRoundTrip:
    EXPRESSIONS = [
        "Sale",
        "Sale join Emp",
        "pi[clerk](Sale) union pi[clerk](Emp)",
        "pi[age](sigma[item = 'PC'](Sale join Emp))",
        "Emp minus pi[clerk, age](Sold)",
        "(A union B) join C",
        "rho[age -> years](Emp)",
        "empty[a, b] union pi[a, b](R)",
        "sigma[a = 1 and b = 2 or not (c < 3)](R)",
        "sigma[a != 'x'](R) minus sigma[b >= 10](R)",
    ]

    @pytest.mark.parametrize("text", EXPRESSIONS)
    def test_parse_str_parse_fixpoint(self, text):
        expr = parse(text)
        assert parse(str(expr)) == expr
