"""Unit tests for :mod:`repro.algebra.simplify`.

Besides checking each rewrite rule syntactically, a semantic guard verifies
every simplification preserves evaluation results on random states.
"""

from __future__ import annotations

import random

import pytest

from repro import Relation, evaluate, parse, simplify

SCOPE = {"R": ("a", "b"), "S": ("b", "c"), "T": ("a", "b")}


def random_state(seed: int):
    rng = random.Random(seed)
    state = {}
    for name, attrs in SCOPE.items():
        rows = {
            tuple(rng.randrange(3) for _ in attrs) for _ in range(rng.randint(0, 5))
        }
        state[name] = Relation(attrs, rows)
    return state


def check(text: str, expected: str, scope=SCOPE):
    simplified = simplify(parse(text), scope)
    assert str(simplified) == expected, f"{text} -> {simplified}"
    # Semantic guard.
    for seed in range(5):
        state = random_state(seed)
        assert evaluate(parse(text), state) == evaluate(simplified, state), text


class TestEmptyPropagation:
    def test_union_with_empty(self):
        check("R union empty[a, b]", "R")
        check("empty[a, b] union R", "R")

    def test_difference_with_empty(self):
        check("R minus empty[a, b]", "R")
        check("empty[a, b] minus R", "empty[a, b]")

    def test_join_with_empty(self):
        check("R join empty[b, c]", "empty[a, b, c]")

    def test_project_of_empty(self):
        check("pi[a](empty[a, b])", "empty[a]")

    def test_select_of_empty(self):
        check("sigma[a = 1](empty[a, b])", "empty[a, b]")

    def test_rename_of_empty(self):
        check("rho[a -> x](empty[a, b])", "empty[x, b]")

    def test_cascading_collapse(self):
        check(
            "pi[a](R join empty[b, c]) union pi[a](empty[a, b] join T) "
            "union pi[a](R)",
            "pi[a](R)",
        )


class TestIdempotence:
    def test_union_self(self):
        check("R union R", "R")

    def test_union_dedupes_nested(self):
        check("R union T union R", "R union T")

    def test_difference_self(self):
        check("R minus R", "empty[a, b]")

    def test_join_self(self):
        check("R join R", "R")

    def test_double_difference(self):
        check("(R minus T) minus T", "R minus T")


class TestFusion:
    def test_nested_projections(self):
        check("pi[a](pi[a, b](R))", "pi[a](R)")

    def test_projection_onto_all_attributes(self):
        check("pi[b, a](R)", "R")

    def test_nested_selections_merge(self):
        simplified = simplify(parse("sigma[a = 1](sigma[b = 2](R))"), SCOPE)
        assert str(simplified) == "sigma[a = 1 and b = 2](R)"

    def test_select_true_dropped(self):
        check("sigma[true](R)", "R")

    def test_select_false_collapses(self):
        check("sigma[false](R)", "empty[a, b]")

    def test_constant_comparison_folded(self):
        check("sigma[1 = 1](R)", "R")
        check("sigma[1 = 2](R)", "empty[a, b]")

    def test_rename_composition(self):
        simplified = simplify(parse("rho[x -> y](rho[a -> x](R))"), SCOPE)
        assert str(simplified) == "rho[a -> y](R)"

    def test_rename_roundtrip_cancels(self):
        simplified = simplify(parse("rho[x -> a](rho[a -> x](R))"), SCOPE)
        assert str(simplified) == "R"


class TestNoOverreach:
    def test_difference_union_not_collapsed(self):
        # (R minus T) union T equals R union T, NOT R: must stay put.
        text = "(R minus T) union T"
        simplified = simplify(parse(text), SCOPE)
        for seed in range(8):
            state = random_state(seed)
            assert evaluate(parse(text), state) == evaluate(simplified, state)

    def test_projection_subset_kept(self):
        simplified = simplify(parse("pi[a](R)"), SCOPE)
        assert str(simplified) == "pi[a](R)"

    def test_works_without_scope(self):
        # Scope-free simplification still handles pure-structure rules.
        simplified = simplify(parse("R union R"))
        assert str(simplified) == "R"
