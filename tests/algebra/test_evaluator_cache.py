"""Tests for the evaluator's caching layers and join fast paths.

Covers the staleness regression (a per-state dict memo reused after the
state changed must raise, not silently return stale relations), the
cross-update :class:`EvaluationCache`, and :class:`EvalStats` accounting.
"""

from __future__ import annotations

import pytest

from repro import (
    EvalStats,
    EvaluationCache,
    EvaluationError,
    Relation,
    StateVersion,
    evaluate,
    evaluate_all,
    parse,
)


@pytest.fixture
def state():
    return {
        "Sale": Relation(("item", "clerk"), [("TV", "Mary"), ("PC", "John")]),
        "Emp": Relation(("clerk", "age"), [("Mary", 23), ("John", 25), ("Paula", 32)]),
    }


class TestDictMemoStalenessGuard:
    """Regression: a memo reused across states used to return stale results."""

    def test_same_state_reuse_is_fine(self, state):
        memo = {}
        first = evaluate(parse("Sale join Emp"), state, cache=memo)
        second = evaluate(parse("Sale join Emp"), state, cache=memo)
        assert first is second

    def test_reuse_after_rebinding_raises(self, state):
        memo = {}
        evaluate(parse("Sale join Emp"), state, cache=memo)
        changed = dict(state)
        changed["Sale"] = Relation(("item", "clerk"), [("VCR", "Paula")])
        with pytest.raises(EvaluationError, match="different state"):
            evaluate(parse("Sale join Emp"), changed, cache=memo)

    def test_reuse_after_removal_raises(self, state):
        memo = {}
        evaluate(parse("Emp"), state, cache=memo)
        smaller = {"Emp": state["Emp"]}
        with pytest.raises(EvaluationError, match="different state"):
            evaluate(parse("Emp"), smaller, cache=memo)

    def test_stale_results_never_served(self, state):
        # The historical hazard, end to end: without the guard the second
        # call would return the join computed from the *old* Sale.
        memo = {}
        old = evaluate(parse("Sale join Emp"), state, cache=memo)
        changed = dict(state)
        changed["Sale"] = Relation(("item", "clerk"), [("VCR", "Paula")])
        with pytest.raises(EvaluationError):
            evaluate(parse("Sale join Emp"), changed, cache=memo)
        fresh = evaluate(parse("Sale join Emp"), changed)
        assert fresh != old
        assert fresh.to_set() == {("VCR", "Paula", 32)}

    def test_evaluate_all_guarded_too(self, state):
        memo = {}
        evaluate_all({"j": parse("Sale join Emp")}, state, cache=memo)
        changed = dict(state)
        changed["Emp"] = Relation(("clerk", "age"), [("Mary", 24)])
        with pytest.raises(EvaluationError):
            evaluate_all({"j": parse("Sale join Emp")}, changed, cache=memo)


class TestStateVersion:
    def test_matches_identity_not_equality(self, state):
        version = StateVersion.capture(state)
        assert version.matches(state)
        equal_copy = {
            name: Relation(rel.attributes, rel.rows) for name, rel in state.items()
        }
        assert not version.matches(equal_copy)

    def test_partial_capture(self, state):
        version = StateVersion.capture(state, ["Emp"])
        assert version.names() == {"Emp"}
        changed = dict(state)
        changed["Sale"] = Relation(("item", "clerk"), [])
        assert version.matches(changed)  # Emp binding untouched
        changed["Emp"] = Relation(("clerk", "age"), [])
        assert not version.matches(changed)


class TestEvaluationCache:
    def test_cross_call_reuse(self, state):
        cache = EvaluationCache()
        stats = EvalStats()
        first = evaluate(parse("Sale join Emp"), state, cache=cache, stats=stats)
        assert stats.cache_hits == 0
        second = evaluate(parse("Sale join Emp"), state, cache=cache, stats=stats)
        assert first is second
        assert stats.cache_hits >= 1

    def test_unchanged_subtrees_survive_a_rebinding(self, state):
        cache = EvaluationCache()
        emp_only = parse("pi[clerk](Emp)")
        first = evaluate(emp_only, state, cache=cache)
        changed = dict(state)
        changed["Sale"] = Relation(("item", "clerk"), [("VCR", "Paula")])
        stats = EvalStats()
        second = evaluate(emp_only, changed, cache=cache, stats=stats)
        assert second is first  # Emp untouched: served from cache
        assert stats.nodes_evaluated == 0

    def test_touched_subtrees_recompute(self, state):
        cache = EvaluationCache()
        expr = parse("Sale join Emp")
        old = evaluate(expr, state, cache=cache)
        changed = dict(state)
        changed["Sale"] = Relation(("item", "clerk"), [("VCR", "Paula")])
        fresh = evaluate(expr, changed, cache=cache)
        assert fresh is not old
        assert fresh.to_set() == {("VCR", "Paula", 32)}

    def test_invalidate_by_name(self, state):
        cache = EvaluationCache()
        evaluate(parse("pi[clerk](Emp)"), state, cache=cache)
        evaluate(parse("pi[item](Sale)"), state, cache=cache)
        size_before = len(cache)
        cache.invalidate(["Emp"])
        assert len(cache) < size_before
        stats = EvalStats()
        evaluate(parse("pi[item](Sale)"), state, cache=cache, stats=stats)
        assert stats.cache_hits == 1

    def test_clear(self, state):
        cache = EvaluationCache()
        evaluate(parse("Sale join Emp"), state, cache=cache)
        cache.clear()
        assert len(cache) == 0


class TestFastPathEquivalence:
    EXPRESSIONS = [
        "pi[clerk](Sale join Emp)",
        "pi[age](Sale join Emp)",
        "pi[item, age](Sale join Emp)",
        "Emp minus pi[clerk, age](Emp join Sale)",
        "Sale minus pi[item, clerk](Sale join Emp)",
        "pi[clerk](Sale) union pi[clerk](Emp)",
    ]

    @pytest.mark.parametrize("text", EXPRESSIONS)
    def test_fastpath_matches_naive(self, state, text):
        expr = parse(text)
        fast = evaluate(expr, state, fastpath=True)
        naive = evaluate(expr, state, fastpath=False)
        assert fast == naive

    def test_antijoin_fastpath_fires(self, state):
        stats = EvalStats()
        result = evaluate(
            parse("Emp minus pi[clerk, age](Emp join Sale)"),
            state,
            stats=stats,
        )
        assert result.to_set() == {("Paula", 32)}
        assert stats.antijoin_fastpaths == 1
        assert stats.joins == 0


class TestEvalStats:
    def test_merge_and_reset(self):
        a, b = EvalStats(), EvalStats()
        a.nodes_evaluated = 3
        b.nodes_evaluated = 4
        b.cache_hits = 2
        a.merge(b)
        assert a.nodes_evaluated == 7
        assert a.cache_hits == 2
        a.reset()
        assert a.snapshot() == {field: 0 for field in a.snapshot()}

    def test_counts_joins_and_rows(self, state):
        stats = EvalStats()
        evaluate(parse("Sale join Emp"), state, stats=stats)
        assert stats.joins == 1
        assert stats.rows_joined == 2
