"""Unit tests for :mod:`repro.algebra.conditions`."""

from __future__ import annotations

import pytest

from repro import ExpressionError, attr, const
from repro.algebra.conditions import (
    And,
    Comparison,
    FALSE,
    Not,
    Or,
    TRUE,
    conjoin,
)


class TestBuilders:
    def test_operand_sugar_builds_comparisons(self):
        condition = attr("age") >= const(18)
        assert isinstance(condition, Comparison)
        assert condition.op == ">="

    def test_eq_sugar(self):
        condition = attr("item") == const("PC")
        assert isinstance(condition, Comparison)
        assert condition.op == "="

    def test_raw_value_coerced_to_constant(self):
        condition = attr("age") > 21
        assert condition.right.value == 21

    def test_boolean_sugar(self):
        condition = (attr("a") == 1) & (attr("b") == 2)
        assert isinstance(condition, And)
        condition = (attr("a") == 1) | (attr("b") == 2)
        assert isinstance(condition, Or)
        condition = ~(attr("a") == 1)
        assert isinstance(condition, Comparison)  # negation folds into !=
        assert condition.op == "!="

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExpressionError):
            Comparison(attr("a"), "~", const(1))


class TestCompile:
    def test_comparison_on_positions(self):
        condition = attr("age") >= const(25)
        predicate = condition.compile(("clerk", "age"))
        assert predicate(("Mary", 30))
        assert not predicate(("Mary", 20))

    def test_attribute_to_attribute(self):
        condition = attr("a") == attr("b")
        predicate = condition.compile(("a", "b"))
        assert predicate((1, 1))
        assert not predicate((1, 2))

    def test_missing_attribute_raises(self):
        condition = attr("ghost") == const(1)
        with pytest.raises(ExpressionError):
            condition.compile(("a", "b"))

    def test_and_or_not(self):
        condition = ((attr("a") == 1) & (attr("b") == 2)) | Not(attr("a") == 1)
        predicate = condition.compile(("a", "b"))
        assert predicate((1, 2))
        assert predicate((9, 9))
        assert not predicate((1, 3))

    def test_true_false(self):
        assert TRUE.compile(("a",))((1,))
        assert not FALSE.compile(("a",))((1,))


class TestStructure:
    def test_attributes_collected(self):
        condition = ((attr("a") == 1) & (attr("b") == attr("c"))) | (attr("d") > 0)
        assert condition.attributes() == frozenset({"a", "b", "c", "d"})

    def test_conjuncts_flattened(self):
        condition = conjoin([attr("a") == 1, conjoin([attr("b") == 2, attr("c") == 3])])
        assert len(condition.conjuncts()) == 3

    def test_conjoin_trivia(self):
        assert conjoin([]) is TRUE
        single = attr("a") == 1
        assert conjoin([single]) is single
        assert conjoin([TRUE, single]).same_as(single)
        assert conjoin([FALSE, single]) is FALSE

    def test_and_deduplicates(self):
        part = attr("a") == 1
        condition = conjoin([part, attr("a") == 1])
        assert condition.same_as(part)

    def test_negation_pushes_inward(self):
        condition = ((attr("a") == 1) & (attr("b") < 2)).negated()
        assert isinstance(condition, Or)
        ops = {p.op for p in condition.parts}
        assert ops == {"!=", ">="}

    def test_double_negation(self):
        condition = Not(attr("a") == 1)
        assert condition.negated().same_as(attr("a") == 1)

    def test_canonical_comparison_orientation(self):
        left = const(5) < attr("a")
        right = attr("a") > const(5)
        assert left.same_as(right)

    def test_renaming(self):
        condition = (attr("a") == 1) & (attr("b") == attr("a"))
        renamed = condition.renamed({"a": "x"})
        assert renamed.attributes() == frozenset({"x", "b"})

    def test_hash_consistency(self):
        first = (attr("a") == 1) & (attr("b") == 2)
        second = (attr("b") == 2) & (attr("a") == 1)
        assert first.same_as(second)
        assert hash(first) == hash(second)


class TestDisplay:
    def test_str_forms(self):
        assert str(attr("age") >= const(18)) == "age >= 18"
        assert str(attr("item") == const("PC")) == "item = 'PC'"
        assert str(TRUE) == "true"
        condition = (attr("a") == 1) & (attr("b") == 2)
        assert str(condition) == "a = 1 and b = 2"

    def test_or_inside_and_parenthesized(self):
        condition = conjoin([(attr("a") == 1) | (attr("b") == 2), attr("c") == 3])
        assert "(" in str(condition)

    def test_string_escaping(self):
        condition = attr("name") == const("O'Brien")
        assert "\\'" in str(condition)
