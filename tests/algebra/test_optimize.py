"""Unit tests for :mod:`repro.algebra.optimize`.

Every rewrite is checked both structurally (the expected shape) and
semantically (equal results on random states).
"""

from __future__ import annotations

import random

import pytest

from repro import Relation, evaluate, parse
from repro.algebra.optimize import optimize

SCOPE = {"R": ("a", "b"), "S": ("b", "c"), "T": ("a", "b")}


def random_state(seed: int):
    rng = random.Random(seed)
    state = {}
    for name, attrs in SCOPE.items():
        rows = {
            tuple(rng.randrange(4) for _ in attrs) for _ in range(rng.randint(0, 7))
        }
        state[name] = Relation(attrs, rows)
    return state


def check(text: str, expected: str = None):
    expr = parse(text)
    optimized = optimize(expr, SCOPE)
    if expected is not None:
        assert str(optimized) == expected, f"{text} -> {optimized}"
    for seed in range(8):
        state = random_state(seed)
        assert evaluate(expr, state) == evaluate(optimized, state), (text, seed)
    return optimized


class TestSelectionPushdown:
    def test_split_across_join(self):
        check(
            "sigma[a = 1 and c = 2](R join S)",
            "sigma[a = 1](R) join sigma[c = 2](S)",
        )

    def test_shared_attribute_goes_one_side(self):
        optimized = check("sigma[b = 1](R join S)")
        # b is shared: it lands on at least one side (our splitter: left).
        assert "sigma" in str(optimized)
        assert str(optimized) != "sigma[b = 1](R join S)"

    def test_cross_relation_conjunct_stays(self):
        optimized = check("sigma[a = c](R join S)")
        assert str(optimized).startswith("sigma[a = c](")

    def test_push_through_union(self):
        check(
            "sigma[a = 1](R union T)",
            "sigma[a = 1](R) union sigma[a = 1](T)",
        )

    def test_push_through_difference(self):
        check("sigma[a = 1](R minus T)", "sigma[a = 1](R) minus T")

    def test_push_through_projection(self):
        # pi[a, b](R) is the identity here and simplifies away first.
        check("sigma[a = 1](pi[a, b](R))", "sigma[a = 1](R)")
        # A genuine projection: sigma commutes inside it.
        optimized = check("sigma[b = 1](pi[b](S))")
        assert str(optimized) == "pi[b](sigma[b = 1](S))"

    def test_push_through_rename(self):
        optimized = check("sigma[x = 1](rho[a -> x](R))")
        assert str(optimized) == "rho[a -> x](sigma[a = 1](R))"

    def test_three_way_join_cascades(self):
        from repro.algebra.expressions import Select

        optimized = check("sigma[a = 1 and c = 2 and b = 3](R join S join T)")
        # Everything pushed; the root is a join, not a selection.
        assert not isinstance(optimized, Select)


class TestProjectionPruning:
    def test_narrow_join_sides(self):
        check(
            "pi[a, c](R join S)",
            "pi[a, c](R join S)",  # R is (a,b): b is the join attr — kept;
        )
        optimized = check("pi[a](R join S)")
        # S narrows to its join attribute b.
        assert "pi[b](S)" in str(optimized)

    def test_distribute_over_union(self):
        check("pi[a](R union T)", "pi[a](R) union pi[a](T)")

    def test_narrow_below_selection(self):
        optimized = check("pi[a](sigma[b = 1](R))")
        # Nothing to narrow (R is only a, b); shape preserved.
        assert str(optimized) in (
            "pi[a](sigma[b = 1](R))",
            "pi[a](sigma[b = 1](pi[a, b](R)))",
        )

    def test_wide_join_gets_narrowed(self):
        scope = dict(SCOPE)
        scope["W"] = ("b", "d", "e", "f")
        expr = parse("pi[a](R join W)")
        optimized = optimize(expr, scope)
        assert "pi[b](W)" in str(optimized)
        rng = random.Random(0)
        for seed in range(5):
            state = random_state(seed)
            state["W"] = Relation(
                ("b", "d", "e", "f"),
                {
                    tuple(rng.randrange(4) for _ in range(4))
                    for _ in range(rng.randint(0, 6))
                },
            )
            assert evaluate(expr, state) == evaluate(optimized, state)


class TestEndToEnd:
    def test_translated_query_shape(self):
        from repro import Catalog, View, complement_thm22
        from repro.core.translation import translate_query

        catalog = Catalog()
        catalog.relation("Sale", ("item", "clerk"))
        catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
        catalog.inclusion("Sale", ("clerk",), "Emp")
        spec = complement_thm22(catalog, [View("Sold", parse("Sale join Emp"))])
        query = parse("pi[age](sigma[item = 'computer'](Sale) join Emp)")
        plain = translate_query(spec, query)
        optimized = translate_query(spec, query, optimized=True)
        # The selection moves inside the projected Sold before the join.
        assert "sigma[item = 'computer'](Sold)" in str(optimized)
        assert plain != optimized

    def test_fixed_point_terminates(self):
        # A deliberately nested expression must not loop.
        text = (
            "pi[a](sigma[a = 1](pi[a, b](sigma[b = 2]("
            "R join (S union sigma[c = 3](S))))))"
        )
        check(text)
