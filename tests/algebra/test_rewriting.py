"""Unit tests for :mod:`repro.algebra.rewriting`."""

from __future__ import annotations

import pytest

from repro import parse, substitute
from repro.algebra.expressions import RelationRef
from repro.algebra.rewriting import base_relations, fold_occurrences, rename_relations


class TestSubstitute:
    def test_leaf_replacement(self):
        result = substitute(parse("pi[clerk](Emp)"), {"Emp": parse("C1 union X")})
        assert str(result) == "pi[clerk](C1 union X)"

    def test_multiple_replacements(self):
        result = substitute(
            parse("Sale join Emp"),
            {"Sale": parse("A"), "Emp": parse("B minus C")},
        )
        assert str(result) == "A join (B minus C)"

    def test_unmapped_names_untouched(self):
        expr = parse("Sale join Emp")
        assert substitute(expr, {"Other": parse("X")}) == expr

    def test_single_pass_no_recursive_substitution(self):
        # A replacement that mentions a replaced name must not loop.
        result = substitute(parse("R"), {"R": parse("R minus S")})
        assert str(result) == "R minus S"

    def test_identity_returns_same_object(self):
        expr = parse("Sale join Emp")
        assert substitute(expr, {}) is expr


class TestBaseRelations:
    def test_names_collected(self):
        expr = parse("pi[a](R join S) union T")
        assert base_relations(expr) == frozenset({"R", "S", "T"})


class TestRenameRelations:
    def test_rename(self):
        result = rename_relations(parse("R join S"), {"R": "R2"})
        assert str(result) == "R2 join S"


class TestFoldOccurrences:
    def test_folds_definition_into_name(self):
        folded = fold_occurrences(
            parse("pi[clerk, age](Sale join Emp)"),
            {parse("Sale join Emp"): RelationRef("Sold")},
        )
        assert str(folded) == "pi[clerk, age](Sold)"

    def test_folds_after_child_rewrites(self):
        # The fold target only appears after inner occurrences are folded.
        folded = fold_occurrences(
            parse("pi[clerk]((Sale join Emp) minus X)"),
            {
                parse("Sale join Emp"): RelationRef("Sold"),
                parse("Sold minus X"): RelationRef("Y"),
            },
        )
        assert str(folded) == "pi[clerk](Y)"

    def test_no_occurrence_is_identity(self):
        expr = parse("A join B")
        assert fold_occurrences(expr, {parse("X join Y"): RelationRef("Z")}) == expr

    def test_is_inverse_of_substitute(self):
        definition = parse("pi[a](R join S)")
        expanded = substitute(parse("V minus T"), {"V": definition})
        folded = fold_occurrences(expanded, {definition: RelationRef("V")})
        assert folded == parse("V minus T")
