"""Property suite: every columnar kernel ≡ the tuple-set implementation.

The columnar engine's correctness story is extensional equality — for any
relation(s) and any operation, decoding the kernel result gives exactly the
frozenset the :class:`~repro.storage.relation.Relation` method computes.
Hypothesis drives this over random schemas (drawn from one shared attribute
pool, so joins hit every overlap regime), tiny value domains (maximizing
code collisions and join matches), random conditions (including mixed-type
comparisons exercising the total-order fallback), and random insert/delete
patches against the validity bitmap.

Dictionary-code edge cases get explicit regression tests: the empty
relation, a single row, an all-duplicate column (one code for the whole
column), and zero-attribute relations.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Relation
from repro.algebra.conditions import (
    And,
    AttributeRef,
    Comparison,
    Constant,
    FALSE,
    Not,
    Or,
    TRUE,
)
from repro.storage.columnar import ColumnarTable

# Tiny domains maximize collision/join coverage per example; the string and
# float members exercise the cross-type total order and the 1 == 1.0 == True
# aliasing that frozensets already exhibit (the dictionary must agree).
VALUES = st.one_of(
    st.integers(min_value=0, max_value=2),
    st.sampled_from(["x", "y", 2.5]),
)

POOL = ("a", "b", "c", "d", "e")

OPS = ("=", "!=", "<", "<=", ">", ">=")


def schemas():
    return (
        st.sets(st.sampled_from(POOL), min_size=1, max_size=3)
        .flatmap(lambda attrs: st.permutations(sorted(attrs)))
        .map(tuple)
    )


def relations(attrs, max_rows: int = 8):
    row = st.tuples(*[VALUES for _ in attrs])
    return st.frozensets(row, max_size=max_rows).map(
        lambda rows: Relation(tuple(attrs), rows)
    )


def relation_pairs():
    """Two relations over independently-drawn, possibly-overlapping schemas."""
    return st.tuples(
        schemas().flatmap(relations), schemas().flatmap(relations)
    )


def aligned_pairs():
    """Two relations over the same attribute set, column orders permuted."""
    return schemas().flatmap(
        lambda attrs: st.tuples(
            relations(attrs),
            st.permutations(list(attrs)).map(tuple).flatmap(relations),
        )
    )


def conditions(attrs):
    """Random conditions over ``attrs``: comparisons under and/or/not."""
    operands = st.one_of(
        st.sampled_from([AttributeRef(a) for a in attrs]),
        VALUES.map(Constant),
        # Constants outside the generated domain: the dictionary has never
        # seen them, hitting the unknown-code paths of = and !=.
        st.sampled_from([Constant(99), Constant("nope")]),
    )
    comparisons = st.builds(
        Comparison, operands, st.sampled_from(OPS), operands
    )
    atoms = st.one_of(comparisons, st.just(TRUE), st.just(FALSE))

    def combine(cls):
        # And/Or flatten + deduplicate and insist on >= 2 distinct parts;
        # fall back to the lone part when the draw collapses.
        def build(parts):
            try:
                return cls(parts)
            except Exception:
                return parts[0]

        return build

    return st.recursive(
        atoms,
        lambda inner: st.one_of(
            st.tuples(inner, inner).map(combine(And)),
            st.tuples(inner, inner).map(combine(Or)),
            inner.map(Not),
        ),
        max_leaves=4,
    )


def assert_equivalent(table: ColumnarTable, expected: Relation) -> None:
    decoded = table.to_relation()
    assert decoded.attributes == table.attributes
    assert decoded == expected
    assert len(table) == len(expected)


class TestKernelEquivalence:
    @given(schemas().flatmap(relations))
    def test_encode_decode_roundtrip(self, r):
        assert_equivalent(r.columnar(), r)

    @given(
        schemas().flatmap(
            lambda attrs: st.tuples(
                relations(attrs), st.just(attrs).flatmap(conditions)
            )
        )
    )
    def test_select(self, case):
        r, condition = case
        expected = r.select(condition.compile(r.attributes))
        assert_equivalent(r.columnar().select(condition), expected)

    @given(
        schemas().flatmap(
            lambda attrs: st.tuples(
                relations(attrs),
                st.sets(st.sampled_from(attrs)).flatmap(
                    lambda sub: st.permutations(sorted(sub)).map(tuple)
                ),
            )
        ),
    )
    def test_project(self, case):
        r, target = case
        if not target:
            return  # the algebra layer never emits zero-attribute projections
        expected = r.project(target)
        assert_equivalent(r.columnar().project(target), expected)

    @given(relation_pairs())
    def test_join(self, pair):
        r, s = pair
        assert_equivalent(r.columnar().join(s.columnar()), r.natural_join(s))

    @given(relation_pairs())
    def test_semi_join(self, pair):
        r, s = pair
        assert_equivalent(r.columnar().semi_join(s.columnar()), r.semi_join(s))

    @given(relation_pairs())
    def test_anti_join(self, pair):
        r, s = pair
        assert_equivalent(r.columnar().anti_join(s.columnar()), r.anti_join(s))

    @given(aligned_pairs())
    def test_union(self, pair):
        r, s = pair
        assert_equivalent(r.columnar().union(s.columnar()), r.union(s))

    @given(aligned_pairs())
    def test_difference(self, pair):
        r, s = pair
        assert_equivalent(r.columnar().difference(s.columnar()), r.difference(s))

    @given(aligned_pairs())
    def test_intersection(self, pair):
        r, s = pair
        assert_equivalent(
            r.columnar().intersection(s.columnar()), r.intersection(s)
        )

    @given(schemas().flatmap(relations))
    def test_rename(self, r):
        mapping = {r.attributes[0]: "zz"}
        assert_equivalent(r.columnar().rename(mapping), r.rename(mapping))


class TestPatchingEquivalence:
    """Insert/delete patching against the validity bitmap."""

    @staticmethod
    @st.composite
    def patch_cases(draw):
        attrs = draw(schemas())
        row = st.tuples(*[VALUES for _ in attrs])
        base = draw(st.frozensets(row, min_size=1, max_size=10))
        removed = draw(st.sets(st.sampled_from(sorted(base, key=repr)), max_size=4))
        added = draw(st.frozensets(row, max_size=4)) - base
        return attrs, base, frozenset(added), frozenset(removed)

    @given(patch_cases())
    def test_patched_equals_recomputed(self, case):
        attrs, base, added, removed = case
        r = Relation(attrs, base)
        patched = r.columnar().patched(added, removed)
        expected = Relation(attrs, (base - removed) | added)
        assert_equivalent(patched, expected)

    @given(patch_cases())
    def test_patched_table_kernels_still_agree(self, case):
        """Kernels over a bitmap-carrying table match a fresh encoding."""
        attrs, base, added, removed = case
        r = Relation(attrs, base)
        patched = r.columnar().patched(added, removed)
        expected = Relation(attrs, (base - removed) | added)
        target = (attrs[0],)
        assert_equivalent(patched.project(target), expected.project(target))
        other = Relation(attrs, sorted(base, key=repr)[:3]).columnar()
        assert_equivalent(
            patched.join(other), expected.natural_join(other.to_relation())
        )

    @given(patch_cases())
    def test_repeated_patches_compose(self, case):
        attrs, base, added, removed = case
        r = Relation(attrs, base)
        once = r.columnar().patched(frozenset(), removed)
        twice = once.patched(added, frozenset())
        assert_equivalent(twice, Relation(attrs, (base - removed) | added))


class TestDictionaryEdgeCases:
    def test_empty_relation(self):
        r = Relation(("a", "b"))
        table = r.columnar()
        assert len(table) == 0 and not table
        assert_equivalent(table, r)
        s = Relation(("b", "c"), [(1, 2)])
        assert_equivalent(table.join(s.columnar()), r.natural_join(s))
        assert_equivalent(table.select(TRUE), r)
        assert_equivalent(table.project(("a",)), r.project(("a",)))

    def test_single_row(self):
        r = Relation(("a",), [(1,)])
        assert_equivalent(r.columnar(), r)
        assert_equivalent(r.columnar().join(r.columnar()), r)
        assert_equivalent(
            r.columnar().patched([(2,)], [(1,)]), Relation(("a",), [(2,)])
        )

    def test_all_duplicate_column(self):
        """One distinct value per column: a single dictionary code."""
        r = Relation(("a", "b"), [(7, i) for i in range(10)])
        table = r.columnar()
        assert_equivalent(table.project(("a",)), r.project(("a",)))
        cond = Comparison(AttributeRef("a"), "=", Constant(7))
        assert_equivalent(table.select(cond), r)
        s = Relation(("a",), [(7,)])
        assert_equivalent(table.semi_join(s.columnar()), r.semi_join(s))
        assert_equivalent(table.anti_join(s.columnar()), r.anti_join(s))

    def test_zero_attribute_relations(self):
        """The two nullary relations: {} and {()} (paper set semantics)."""
        empty = Relation(())
        unit = Relation((), [()])
        assert_equivalent(empty.columnar(), empty)
        assert_equivalent(unit.columnar(), unit)
        assert_equivalent(unit.columnar().join(unit.columnar()), unit)
        assert_equivalent(unit.columnar().union(empty.columnar()), unit)
        assert_equivalent(unit.columnar().difference(unit.columnar()), empty)

    def test_value_aliasing_matches_frozensets(self):
        """1, 1.0, and True are one frozenset member — and one code."""
        r = Relation(("a",), [(1,), (1.0,), (True,)])
        assert len(r) == 1
        table = r.columnar()
        assert len(table) == 1
        assert_equivalent(table, r)
        s = Relation(("a",), [(True,)])
        assert_equivalent(table.semi_join(s.columnar()), r.semi_join(s))
