"""Unit tests for :mod:`repro.storage.relation`."""

from __future__ import annotations

import pytest

from repro import ExpressionError, Relation


@pytest.fixture
def sale() -> Relation:
    return Relation(("item", "clerk"), [("TV", "Mary"), ("VCR", "Mary"), ("PC", "John")])


@pytest.fixture
def emp() -> Relation:
    return Relation(("clerk", "age"), [("Mary", 23), ("John", 25), ("Paula", 32)])


class TestConstruction:
    def test_deduplicates(self):
        rel = Relation(("a",), [(1,), (1,), (2,)])
        assert len(rel) == 2

    def test_row_width_checked(self):
        with pytest.raises(ExpressionError):
            Relation(("a", "b"), [(1,)])

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ExpressionError):
            Relation(("a", "a"), [])

    def test_from_dicts(self):
        rel = Relation.from_dicts(("a", "b"), [{"a": 1, "b": 2}, {"b": 4, "a": 3}])
        assert rel.to_set() == {(1, 2), (3, 4)}

    def test_empty_constructor(self):
        rel = Relation.empty(("a", "b"))
        assert not rel
        assert rel.attributes == ("a", "b")

    def test_iteration_and_membership(self, sale):
        assert ("TV", "Mary") in sale
        assert ("TV", "Nobody") not in sale
        assert len(list(sale)) == 3

    def test_to_dicts(self):
        rel = Relation(("a",), [(1,)])
        assert rel.to_dicts() == [{"a": 1}]


class TestAlignment:
    def test_reorder(self, sale):
        flipped = sale.reorder(("clerk", "item"))
        assert flipped.attributes == ("clerk", "item")
        assert ("Mary", "TV") in flipped
        assert flipped == sale  # equality is order-insensitive

    def test_reorder_requires_permutation(self, sale):
        with pytest.raises(ExpressionError):
            sale.reorder(("clerk",))

    def test_equality_across_column_orders(self):
        first = Relation(("a", "b"), [(1, 2)])
        second = Relation(("b", "a"), [(2, 1)])
        assert first == second
        assert hash(first) == hash(second)

    def test_inequality_on_different_attribute_sets(self):
        assert Relation(("a",), [(1,)]) != Relation(("b",), [(1,)])


class TestProjection:
    def test_project(self, sale):
        clerks = sale.project(("clerk",))
        assert clerks.to_set() == {("Mary",), ("John",)}

    def test_project_unknown_attribute(self, sale):
        with pytest.raises(ExpressionError):
            sale.project(("ghost",))

    def test_project_or_empty_known(self, sale):
        assert sale.project_or_empty(("clerk",)).to_set() == {("Mary",), ("John",)}

    def test_project_or_empty_unknown_gives_empty_over_z(self, sale):
        # The paper's Section 2 convention.
        result = sale.project_or_empty(("clerk", "age"))
        assert not result
        assert result.attributes == ("clerk", "age")


class TestSetOperations:
    def test_union_aligns_columns(self):
        first = Relation(("a", "b"), [(1, 2)])
        second = Relation(("b", "a"), [(4, 3)])
        assert first.union(second).to_set() == {(1, 2), (3, 4)}

    def test_union_incompatible_schema(self, sale, emp):
        with pytest.raises(ExpressionError):
            sale.union(emp)

    def test_difference(self, sale):
        rest = sale.difference(Relation(("item", "clerk"), [("TV", "Mary")]))
        assert rest.to_set() == {("VCR", "Mary"), ("PC", "John")}

    def test_intersection(self, sale):
        both = sale.intersection(Relation(("item", "clerk"), [("TV", "Mary"), ("X", "Y")]))
        assert both.to_set() == {("TV", "Mary")}


class TestJoin:
    def test_natural_join(self, sale, emp):
        sold = sale.natural_join(emp)
        assert sold.attribute_set == {"item", "clerk", "age"}
        assert sold.to_set() == {
            ("TV", "Mary", 23),
            ("VCR", "Mary", 23),
            ("PC", "John", 25),
        }

    def test_join_without_shared_attributes_is_product(self):
        first = Relation(("a",), [(1,), (2,)])
        second = Relation(("b",), [(9,)])
        product = first.natural_join(second)
        assert product.to_set() == {(1, 9), (2, 9)}

    def test_join_with_empty_is_empty(self, sale):
        assert not sale.natural_join(Relation.empty(("clerk", "age")))

    def test_join_is_commutative_up_to_column_order(self, sale, emp):
        assert sale.natural_join(emp) == emp.natural_join(sale)


class TestRename:
    def test_rename(self, emp):
        renamed = emp.rename({"age": "years"})
        assert renamed.attributes == ("clerk", "years")
        assert ("Mary", 23) in renamed

    def test_rename_unknown(self, emp):
        with pytest.raises(ExpressionError):
            emp.rename({"ghost": "x"})

    def test_rename_collision(self, emp):
        with pytest.raises(ExpressionError):
            emp.rename({"age": "clerk"})


class TestSelectAndKeys:
    def test_select_by_predicate(self, emp):
        young = emp.select(lambda row: row[1] < 30)
        assert young.to_set() == {("Mary", 23), ("John", 25)}

    def test_key_violations_empty_when_key_holds(self, emp):
        assert emp.key_violations(("clerk",)) == []

    def test_key_violations_detected(self):
        rel = Relation(("k", "v"), [(1, "a"), (1, "b")])
        violations = rel.key_violations(("k",))
        assert len(violations) == 1

    def test_index_on(self, emp):
        index = emp.index_on(("clerk",))
        assert index[("Mary",)] == ("Mary", 23)

    def test_index_on_broken_key(self):
        rel = Relation(("k", "v"), [(1, "a"), (1, "b")])
        with pytest.raises(ExpressionError):
            rel.index_on(("k",))


class TestDisplay:
    def test_pretty_contains_header_and_rows(self, emp):
        text = emp.pretty()
        assert "clerk" in text and "age" in text
        assert "'Mary'" in text

    def test_pretty_truncates(self):
        rel = Relation(("n",), [(i,) for i in range(50)])
        text = rel.pretty(max_rows=5)
        assert "more rows" in text
