"""Unit tests for :mod:`repro.storage.persist` (JSON snapshots)."""

from __future__ import annotations

import json

import pytest

from repro import Catalog, Database, Relation, View, Warehouse, parse, parse_condition
from repro.storage.persist import (
    catalog_from_dict,
    catalog_to_dict,
    load_warehouse,
    relation_from_dict,
    relation_to_dict,
    save_warehouse,
    spec_from_dict,
    spec_to_dict,
    state_from_dict,
    state_to_dict,
)


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    catalog.inclusion("Sale", ("clerk",), "Emp")
    catalog.add_check("Sale", parse_condition("item != 'void'"))
    return catalog


class TestCatalogRoundTrip:
    def test_relations_keys_inds_checks(self, catalog):
        rebuilt = catalog_from_dict(catalog_to_dict(catalog))
        assert rebuilt.relation_names() == catalog.relation_names()
        assert rebuilt.key("Emp") == ("clerk",)
        assert rebuilt.inclusions() == catalog.inclusions()
        assert [str(c) for c in rebuilt.checks("Sale")] == ["item != 'void'"]

    def test_json_serializable(self, catalog):
        json.dumps(catalog_to_dict(catalog))


class TestRelationRoundTrip:
    def test_values_survive(self):
        rel = Relation(("a", "b"), [(1, "x"), (2.5, None), (True, "y")])
        rebuilt = relation_from_dict(relation_to_dict(rel))
        assert rebuilt == rel

    def test_state_roundtrip(self):
        state = {
            "R": Relation(("a",), [(1,), (2,)]),
            "S": Relation(("b", "c"), [("x", 9)]),
        }
        rebuilt = state_from_dict(state_to_dict(state))
        assert rebuilt == state

    def test_rows_sorted_for_stable_output(self):
        rel = Relation(("a",), [(3,), (1,), (2,)])
        first = json.dumps(relation_to_dict(rel))
        second = json.dumps(relation_to_dict(Relation(("a",), [(2,), (3,), (1,)])))
        assert first == second


class TestSpecRoundTrip:
    def test_spec_structures_preserved(self, catalog):
        from repro import specify

        spec = specify(catalog, [View("Sold", parse("Sale join Emp"))])
        rebuilt = spec_from_dict(spec_to_dict(spec))
        assert rebuilt.method == spec.method
        assert rebuilt.view_names() == spec.view_names()
        assert set(rebuilt.complement_names()) == set(spec.complement_names())
        for relation in spec.inverses:
            assert rebuilt.inverses[relation] == spec.inverses[relation]
        for relation, complement in spec.complements.items():
            assert rebuilt.complements[relation].definition == complement.definition
            assert (
                rebuilt.complements[relation].provably_empty
                == complement.provably_empty
            )


class TestWarehouseRoundTrip:
    def test_save_load_resume(self, catalog, tmp_path):
        db = Database(catalog)
        db.load("Emp", [("Mary", 23), ("Paula", 32)])
        db.load("Sale", [("TV", "Mary")])
        warehouse = Warehouse.specify(catalog, [View("Sold", parse("Sale join Emp"))])
        warehouse.initialize(db)

        path = str(tmp_path / "warehouse.json")
        save_warehouse(warehouse, path)
        resumed = load_warehouse(path)

        assert resumed.state == warehouse.state
        # The resumed warehouse keeps operating without any source access.
        update = db.insert("Sale", [("PC", "Paula")])
        resumed.apply(update)
        warehouse.apply(update)
        assert resumed.state == warehouse.state
        assert resumed.reconstruct("Sale") == db["Sale"]

    def test_uninitialized_warehouse_snapshot(self, catalog, tmp_path):
        warehouse = Warehouse.specify(catalog, [View("Sold", parse("Sale join Emp"))])
        path = str(tmp_path / "spec-only.json")
        save_warehouse(warehouse, path)
        resumed = load_warehouse(path)
        from repro import WarehouseError

        with pytest.raises(WarehouseError):
            resumed.state

    def test_version_check(self, catalog, tmp_path):
        warehouse = Warehouse.specify(catalog, [View("Sold", parse("Sale join Emp"))])
        path = str(tmp_path / "bad.json")
        save_warehouse(warehouse, path)
        data = json.loads(open(path).read())
        data["spec"]["version"] = 999
        open(path, "w").write(json.dumps(data))
        from repro import SchemaError

        with pytest.raises(SchemaError):
            load_warehouse(path)
