"""Direct unit tests for ``Relation``'s delta-patched caches.

PR 1's index patching (``_derive_caches``) was exercised only indirectly,
through joins inside maintenance runs. These tests pin the contract down at
the storage layer: a delta-sized union/difference carries the hash-join
buckets forward (patch-after-insert *and* patch-after-delete), the patched
index answers joins correctly, and a non-delta-sized operation drops the
caches (the staleness guard ``_is_delta_sized``).

The columnar twin added in this PR rides the same machinery, so the same
matrix is asserted for it: patched (bitmap) under delta-sized ops, dropped
under bulk ops, and always decoding to exactly the new row set.
"""

from __future__ import annotations

import pytest

from repro import Relation


def big_relation(n: int = 40) -> Relation:
    return Relation(("k", "v"), [(i % 10, i) for i in range(n)])


def force_join_index(relation: Relation, attrs=("k",)) -> None:
    """Build (and cache) the hash-join buckets over ``attrs``.

    ``semi_join`` hashes its *argument*, so probing with a tiny relation
    on the left builds (and caches) ``relation``'s buckets.
    """
    probe = Relation(attrs, [(0,)])
    probe.semi_join(relation)
    assert relation.has_join_index(attrs)


class TestIndexPatchAfterInsert:
    def test_union_patches_index(self):
        r = big_relation()
        force_join_index(r)
        delta = Relation(("k", "v"), [(3, 1000)])
        result = r.union(delta)
        assert result.has_join_index(("k",))
        # The patched index must answer joins exactly like a fresh build.
        s = Relation(("k",), [(3,)])
        fresh = Relation(("k", "v"), result.rows)
        assert result.natural_join(s) == fresh.natural_join(s)

    def test_ineffective_union_keeps_identity(self):
        r = big_relation()
        force_join_index(r)
        assert r.union(Relation(("k", "v"), [(0, 0)])) is r


class TestIndexPatchAfterDelete:
    def test_difference_patches_index(self):
        r = big_relation()
        force_join_index(r)
        delta = Relation(("k", "v"), [(0, 0), (0, 10)])
        result = r.difference(delta)
        assert result.has_join_index(("k",))
        s = Relation(("k",), [(0,)])
        fresh = Relation(("k", "v"), result.rows)
        assert result.natural_join(s) == fresh.natural_join(s)
        assert (0, 0) not in result and (0, 10) not in result

    def test_patched_index_reused_after_delete_then_insert(self):
        """The maintenance shape: difference(deletes).union(inserts)."""
        r = big_relation()
        force_join_index(r)
        deleted = r.difference(Relation(("k", "v"), [(1, 1)]))
        assert deleted.has_join_index(("k",))
        final = deleted.union(Relation(("k", "v"), [(1, 999)]))
        assert final.has_join_index(("k",))
        s = Relation(("k",), [(1,)])
        fresh = Relation(("k", "v"), final.rows)
        assert final.natural_join(s) == fresh.natural_join(s)

    def test_delete_emptying_a_bucket_removes_the_key(self):
        r = Relation(("k", "v"), [(i, i) for i in range(20)])
        force_join_index(r)
        result = r.difference(Relation(("k", "v"), [(5, 5)]))
        s = Relation(("k",), [(5,)])
        assert len(result.natural_join(s)) == 0


class TestStalenessGuard:
    """Bulk (non-delta-sized) operations must drop derived caches."""

    def test_bulk_union_drops_index(self):
        r = big_relation(8)
        force_join_index(r)
        bulk = Relation(("k", "v"), [(i, -i) for i in range(30)])
        result = r.union(bulk)
        assert not result.has_join_index(("k",))

    def test_bulk_difference_drops_index(self):
        r = big_relation(8)
        force_join_index(r)
        bulk = Relation(("k", "v"), [(i % 10, i) for i in range(8)])
        result = r.difference(bulk)
        assert not result.has_join_index(("k",))

    def test_guard_threshold_is_patch_ratio(self):
        r = big_relation(40)
        force_join_index(r)
        at_threshold = Relation(("k", "v"), [(90, 9000 + i) for i in range(10)])
        assert r.union(at_threshold).has_join_index(("k",))
        over_threshold = Relation(("k", "v"), [(91, 9100 + i) for i in range(11)])
        assert not r.union(over_threshold).has_join_index(("k",))


class TestColumnarTwinGuard:
    """The columnar bitmap honors the same staleness guard as the indexes."""

    def test_delta_union_patches_twin(self):
        r = big_relation()
        r.columnar()
        result = r.union(Relation(("k", "v"), [(3, 1000)]))
        assert result.has_columnar_twin()
        assert result._columnar.to_relation() == result

    def test_delta_difference_patches_twin_via_bitmap(self):
        r = big_relation()
        r.columnar()
        result = r.difference(Relation(("k", "v"), [(0, 0), (1, 1)]))
        assert result.has_columnar_twin()
        twin = result._columnar
        assert twin.to_relation() == result
        # Deletions are bitmap kills, not rebuilds: dead slots remain.
        assert twin.physical_rows() == len(r)
        assert twin.has_dead_rows()

    def test_bulk_operation_drops_twin(self):
        r = big_relation(8)
        r.columnar()
        bulk = Relation(("k", "v"), [(i, -i) for i in range(30)])
        assert not r.union(bulk).has_columnar_twin()
        assert not r.difference(
            Relation(("k", "v"), [(i % 10, i) for i in range(8)])
        ).has_columnar_twin()

    def test_twin_alone_enables_patching(self):
        """_is_delta_sized counts the twin as a cache worth preserving."""
        r = big_relation()
        assert not r.has_columnar_twin() and r.cached_index_count() == 0
        r.columnar()
        result = r.difference(Relation(("k", "v"), [(0, 0)]))
        assert result.has_columnar_twin()
        assert result._columnar.to_relation() == result

    def test_mostly_deleted_twin_compacts(self):
        r = big_relation(40)
        r.columnar()
        twin = r.columnar().patched(
            frozenset(), frozenset((i % 10, i) for i in range(30))
        )
        assert not twin.has_dead_rows()
        assert twin.physical_rows() == 10

    def test_maintenance_shape_keeps_twin_through_refresh(self):
        r = big_relation()
        r.columnar()
        stepped = r.difference(Relation(("k", "v"), [(2, 2)])).union(
            Relation(("k", "v"), [(2, 2000)])
        )
        assert stepped.has_columnar_twin()
        assert stepped._columnar.to_relation() == stepped


class TestProjectionCachePatching:
    def test_projection_carried_on_insert_only(self):
        r = big_relation()
        r.project(("k",))  # populate the projection cache
        result = r.union(Relation(("k", "v"), [(77, 7)]))
        assert result.project(("k",)).rows == frozenset(
            {(i,) for i in range(10)} | {(77,)}
        )

    def test_projection_not_carried_after_delete(self):
        """pi does not distribute over deletion under set semantics."""
        r = big_relation()
        r.project(("k",))
        result = r.difference(
            Relation(("k", "v"), [(9, i) for i in range(40) if i % 10 == 9])
        )
        assert (9,) not in result.project(("k",)).rows
