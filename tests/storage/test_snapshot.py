"""Unit tests for :mod:`repro.storage.snapshot` and ``Warehouse.snapshot``."""

from __future__ import annotations

import pytest

from repro import Catalog, Relation, View, WarehouseError, parse
from repro.core.warehouse import Warehouse
from repro.storage import SnapshotView


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    return catalog


@pytest.fixture
def warehouse(catalog) -> Warehouse:
    warehouse = Warehouse.specify(catalog, [View("Sold", parse("Sale join Emp"))])
    warehouse.initialize(
        {
            "Sale": Relation(("item", "clerk"), [("TV", "Mary")]),
            "Emp": Relation(("clerk", "age"), [("Mary", 23), ("Ann", 31)]),
        }
    )
    return warehouse


class TestSnapshotView:
    def test_read_api(self):
        snap = SnapshotView(
            {"R": Relation(("x",), [(1,), (2,)])}, version=7, label="shard0"
        )
        assert snap.version == 7
        assert snap.label == "shard0"
        assert snap.names() == ("R",)
        assert "R" in snap and "S" not in snap
        assert len(snap) == 1 and list(snap) == ["R"]
        assert snap.total_rows() == 2
        assert snap.relation("R").rows == frozenset({(1,), (2,)})

    def test_missing_relation_raises(self):
        snap = SnapshotView({}, version=0)
        with pytest.raises(WarehouseError, match="no relation"):
            snap.relation("Ghost")

    def test_state_is_a_fresh_mapping(self):
        relations = {"R": Relation(("x",), [(1,)])}
        snap = SnapshotView(relations, version=1)
        state = snap.state()
        state["R"] = Relation(("x",), [])
        state["extra"] = Relation(("y",), [])
        assert snap.relation("R").rows == frozenset({(1,)})
        assert "extra" not in snap

    def test_detached_from_producer_mutations(self):
        relations = {"R": Relation(("x",), [(1,)])}
        snap = SnapshotView(relations, version=1)
        relations["R"] = Relation(("x",), [(9,)])
        assert snap.relation("R").rows == frozenset({(1,)})


class TestWarehouseSnapshot:
    def test_version_starts_and_bumps(self, warehouse):
        v0 = warehouse.version
        warehouse.insert("Sale", [("Radio", "Ann")])
        assert warehouse.version == v0 + 1
        warehouse.delete("Sale", [("Radio", "Ann")])
        assert warehouse.version == v0 + 2

    def test_snapshot_cached_per_version(self, warehouse):
        assert warehouse.snapshot() is warehouse.snapshot()
        before = warehouse.snapshot()
        warehouse.insert("Sale", [("Radio", "Ann")])
        after = warehouse.snapshot()
        assert after is not before
        assert after.version == before.version + 1

    def test_reader_keeps_consistent_image_across_refreshes(self, warehouse):
        snap = warehouse.snapshot()
        sold_before = snap.relation("Sold")
        warehouse.insert("Sale", [("Radio", "Ann")])
        warehouse.insert("Sale", [("Amp", "Mary")])
        # The pinned image never moves, while the live state does.
        assert snap.relation("Sold") == sold_before
        assert warehouse.relation("Sold") != sold_before

    def test_structural_sharing_of_unchanged_relations(self):
        # Two independent views: refreshing one leaves the other's pinned
        # relation the *same object* in both snapshot versions.
        catalog = Catalog()
        catalog.relation("R", ("x",))
        catalog.relation("S", ("y",))
        warehouse = Warehouse.specify(
            catalog, [View("VR", parse("R")), View("VS", parse("S"))]
        )
        warehouse.initialize(
            {"R": Relation(("x",), [(1,)]), "S": Relation(("y",), [(2,)])}
        )
        snap = warehouse.snapshot()
        warehouse.insert("R", [(3,)])
        after = warehouse.snapshot()
        assert snap.relation("VS") is after.relation("VS")
        assert snap.relation("VR") is not after.relation("VR")

    def test_snapshot_matches_state(self, warehouse):
        warehouse.insert("Sale", [("Radio", "Ann")])
        assert warehouse.snapshot().state() == warehouse.state

    def test_uninitialized_snapshot_rejected(self, catalog):
        warehouse = Warehouse.specify(
            catalog, [View("Sold", parse("Sale join Emp"))]
        )
        with pytest.raises(WarehouseError, match="not initialized"):
            warehouse.snapshot()
