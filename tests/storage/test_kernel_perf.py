"""Kernel micro-benchmark regression floors (opt-in; pytest ``slow`` mark).

The columnar engine exists for speed; these tests keep that claim honest by
asserting each kernel beats the tuple-set path by a configured floor at
scale 5 (10^5 rows). The floors are deliberately well below the measured
speedups (roughly half, to absorb CI jitter — see ``benchmarks/`` and
EXPERIMENTS.md E14 for the real numbers), so a pass is cheap but a silent
regression to per-row execution fails loudly.

Timing tests are inherently environment-sensitive, so they are double
gated: marked ``slow`` *and* skipped unless ``REPRO_RUN_PERF_TESTS=1``
(the CI columnar job sets it; plain tier-1 runs never time anything).
``REPRO_KERNEL_FLOOR_SCALE`` rescales every floor (e.g. ``0.5`` on a noisy
machine).
"""

from __future__ import annotations

import os
import time

import pytest

from repro import Relation
from repro.algebra.conditions import AttributeRef, Comparison, Constant

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(
        os.environ.get("REPRO_RUN_PERF_TESTS") != "1",
        reason="perf floors are opt-in: set REPRO_RUN_PERF_TESTS=1",
    ),
]

SCALE = 5  # 10^SCALE rows — the ISSUE's "scale >= 5"
N = 10**SCALE

_FLOOR_SCALE = float(os.environ.get("REPRO_KERNEL_FLOOR_SCALE", "1.0"))

#: Minimum required speedup (columnar vs tuple), per kernel. Measured on
#: the reference machine: join 4.4x, select(=) 5.3x, select(<) 1.5x,
#: semi-join 10x, project 20x.
FLOORS = {
    "join": 2.0,
    "select_eq": 2.5,
    "select_range": 1.1,
    "semi_join": 4.0,
    "project": 5.0,
}


def _best(f, repeats: int = 3) -> float:
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        f()
        times.append(time.perf_counter() - started)
    return min(times)


@pytest.fixture(scope="module")
def data():
    left = Relation(("k", "a"), [(i % (N // 4), i) for i in range(N)])
    right = Relation(("k", "b"), [(i % (N // 4), -i) for i in range(N // 10)])
    return left, right


def _fresh(relation: Relation) -> Relation:
    """A cache-free clone: the tuple path may not reuse warm indexes."""
    return Relation._raw(relation.attributes, relation.rows)


def _assert_floor(kernel: str, tuple_seconds: float, columnar_seconds: float):
    floor = FLOORS[kernel] * _FLOOR_SCALE
    speedup = tuple_seconds / columnar_seconds
    assert speedup >= floor, (
        f"{kernel}: columnar speedup {speedup:.2f}x fell below the "
        f"configured floor {floor:.2f}x "
        f"(tuple {tuple_seconds * 1e3:.1f}ms, columnar {columnar_seconds * 1e3:.1f}ms)"
    )


class TestKernelFloors:
    def test_join_floor(self, data):
        left, right = data
        lt, rt = left.columnar(), right.columnar()
        t_tuple = _best(lambda: _fresh(left).natural_join(_fresh(right)))
        t_columnar = _best(lambda: lt.join(rt))
        _assert_floor("join", t_tuple, t_columnar)

    def test_select_equality_floor(self, data):
        left, _ = data
        lt = left.columnar()
        condition = Comparison(AttributeRef("k"), "=", Constant(17))
        predicate = condition.compile(left.attributes)
        t_tuple = _best(lambda: _fresh(left).select(predicate))
        t_columnar = _best(lambda: lt.select(condition))
        _assert_floor("select_eq", t_tuple, t_columnar)

    def test_select_range_floor(self, data):
        left, _ = data
        lt = left.columnar()
        condition = Comparison(AttributeRef("a"), "<", Constant(N // 10))
        predicate = condition.compile(left.attributes)
        t_tuple = _best(lambda: _fresh(left).select(predicate))
        t_columnar = _best(lambda: lt.select(condition))
        _assert_floor("select_range", t_tuple, t_columnar)

    def test_semi_join_floor(self, data):
        left, right = data
        lt, rt = left.columnar(), right.columnar()
        t_tuple = _best(lambda: _fresh(left).semi_join(_fresh(right)))
        t_columnar = _best(lambda: lt.semi_join(rt))
        _assert_floor("semi_join", t_tuple, t_columnar)

    def test_project_floor(self, data):
        left, _ = data
        lt = left.columnar()
        t_tuple = _best(lambda: _fresh(left).project(("k",)))
        t_columnar = _best(lambda: lt.project(("k",)))
        _assert_floor("project", t_tuple, t_columnar)

    def test_results_agree_while_timing(self, data):
        """The timed paths compute the same relation (guards against a
        'fast because wrong' regression slipping past the floors)."""
        left, right = data
        assert left.columnar().join(right.columnar()).to_relation() == _fresh(
            left
        ).natural_join(_fresh(right))
