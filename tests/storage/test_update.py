"""Unit tests for :mod:`repro.storage.update`."""

from __future__ import annotations

import pytest

from repro import Delta, ExpressionError, Relation, Update


@pytest.fixture
def current() -> Relation:
    return Relation(("a", "b"), [(1, "x"), (2, "y")])


class TestDelta:
    def test_requires_some_change(self):
        with pytest.raises(ExpressionError):
            Delta("R")

    def test_defaults_fill_empty_side(self):
        delta = Delta("R", inserts=Relation(("a",), [(1,)]))
        assert not delta.deletes
        assert delta.deletes.attributes == ("a",)

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ExpressionError):
            Delta(
                "R",
                inserts=Relation(("a",), [(1,)]),
                deletes=Relation(("b",), [(1,)]),
            )

    def test_apply(self, current):
        delta = Delta(
            "R",
            inserts=Relation(("a", "b"), [(3, "z")]),
            deletes=Relation(("a", "b"), [(1, "x")]),
        )
        assert delta.apply_to(current).to_set() == {(2, "y"), (3, "z")}

    def test_normalized_drops_present_inserts(self, current):
        delta = Delta("R", inserts=Relation(("a", "b"), [(1, "x"), (3, "z")]))
        effective = delta.normalized(current)
        assert effective.inserts.to_set() == {(3, "z")}

    def test_normalized_drops_absent_deletes(self, current):
        delta = Delta("R", deletes=Relation(("a", "b"), [(9, "q"), (1, "x")]))
        effective = delta.normalized(current)
        assert effective.deletes.to_set() == {(1, "x")}

    def test_normalized_insert_wins_over_delete(self, current):
        delta = Delta(
            "R",
            inserts=Relation(("a", "b"), [(1, "x")]),
            deletes=Relation(("a", "b"), [(1, "x")]),
        )
        effective = delta.normalized(current)
        # (1, x) is deleted then reinserted: net no change.
        assert effective.is_empty()

    def test_is_effective_for(self, current):
        good = Delta(
            "R",
            inserts=Relation(("a", "b"), [(3, "z")]),
            deletes=Relation(("a", "b"), [(1, "x")]),
        )
        assert good.is_effective_for(current)
        bad = Delta("R", inserts=Relation(("a", "b"), [(1, "x")]))
        assert not bad.is_effective_for(current)

    def test_inverted_undoes(self, current):
        delta = Delta(
            "R",
            inserts=Relation(("a", "b"), [(3, "z")]),
            deletes=Relation(("a", "b"), [(1, "x")]),
        )
        after = delta.apply_to(current)
        assert delta.inverted().apply_to(after) == current


class TestUpdate:
    def test_insert_constructor(self):
        update = Update.insert("R", ("a",), [(1,)])
        assert update.relations() == ("R",)
        assert update.delta_for("R").inserts.to_set() == {(1,)}
        assert update.delta_for("S") is None

    def test_merge_per_relation(self):
        update = Update.of(
            Delta("R", inserts=Relation(("a",), [(1,)])),
            Delta("R", inserts=Relation(("a",), [(2,)])),
            Delta("S", deletes=Relation(("b",), [(9,)])),
        )
        assert len(update) == 2
        assert update.delta_for("R").inserts.to_set() == {(1,), (2,)}

    def test_then_composes(self):
        first = Update.insert("R", ("a",), [(1,)])
        second = Update.delete("R", ("a",), [(5,)])
        merged = first.then(second)
        delta = merged.delta_for("R")
        assert delta.inserts.to_set() == {(1,)}
        assert delta.deletes.to_set() == {(5,)}

    def test_normalized_against_state(self, current):
        update = Update.insert("R", ("a", "b"), [(1, "x"), (7, "w")])
        effective = update.normalized({"R": current})
        assert effective.delta_for("R").inserts.to_set() == {(7, "w")}

    def test_normalized_drops_noop_relations(self, current):
        update = Update.insert("R", ("a", "b"), [(1, "x")])
        effective = update.normalized({"R": current})
        assert effective.is_empty()
        assert "R" not in effective

    def test_contains(self):
        update = Update.insert("R", ("a",), [(1,)])
        assert "R" in update
        assert "S" not in update
