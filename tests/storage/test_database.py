"""Unit tests for :mod:`repro.storage.database`."""

from __future__ import annotations

import pytest

from repro import (
    Catalog,
    ConstraintViolation,
    Database,
    Relation,
    SchemaError,
    Update,
)


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    catalog.relation("Sale", ("item", "clerk"))
    catalog.inclusion("Sale", ("clerk",), "Emp")
    return catalog


@pytest.fixture
def db(catalog) -> Database:
    db = Database(catalog)
    db.load("Emp", [("Mary", 23), ("John", 25)])
    db.load("Sale", [("TV", "Mary")])
    return db


class TestStateManagement:
    def test_initial_state_is_empty(self, catalog):
        db = Database(catalog)
        assert len(db["Emp"]) == 0
        assert db.total_rows() == 0

    def test_load_and_read(self, db):
        assert ("Mary", 23) in db["Emp"]
        assert db.total_rows() == 3

    def test_load_reorders_columns(self, catalog):
        db = Database(catalog)
        db._bind("Emp", Relation(("age", "clerk"), [(23, "Mary")]))
        assert db["Emp"].attributes == ("clerk", "age")
        assert ("Mary", 23) in db["Emp"]

    def test_unknown_relation(self, db):
        with pytest.raises(SchemaError):
            db["Nope"]
        assert "Emp" in db and "Nope" not in db

    def test_wrong_schema_rejected(self, catalog):
        db = Database(catalog)
        with pytest.raises(SchemaError):
            db._bind("Emp", Relation(("x", "y"), []))

    def test_copy_is_independent(self, db):
        clone = db.copy()
        clone.insert("Emp", [("Zoe", 40)])
        assert ("Zoe", 40) not in db["Emp"]

    def test_state_snapshot(self, db):
        snapshot = db.state()
        db.insert("Emp", [("Zoe", 40)])
        assert ("Zoe", 40) not in snapshot["Emp"]


class TestConstraints:
    def test_key_violation_on_load(self, catalog):
        db = Database(catalog)
        with pytest.raises(ConstraintViolation):
            db.load("Emp", [("Mary", 23), ("Mary", 99)])

    def test_ind_violation_on_load(self, catalog):
        db = Database(catalog)
        db.load("Emp", [("Mary", 23)])
        with pytest.raises(ConstraintViolation):
            db.load("Sale", [("TV", "Ghost")])

    def test_violations_described(self, catalog):
        db = Database(catalog)
        db.load("Sale", [("TV", "Ghost")], check=False)
        problems = db.constraint_violations()
        assert any("inclusion" in p for p in problems)
        assert not db.satisfies_constraints()

    def test_renamed_ind_checked(self):
        catalog = Catalog()
        catalog.relation("Customer", ("custkey",), key=("custkey",))
        catalog.relation("Orders", ("okey", "cust"), key=("okey",))
        catalog.inclusion("Orders", ("cust",), "Customer", ("custkey",))
        db = Database(catalog)
        db.load("Customer", [(1,)])
        db.load("Orders", [(10, 1)])
        with pytest.raises(ConstraintViolation):
            db.insert("Orders", [(11, 2)])


class TestUpdates:
    def test_insert_returns_effective_update(self, db):
        effective = db.insert("Emp", [("Zoe", 40), ("Mary", 23)])
        assert effective.delta_for("Emp").inserts.to_set() == {("Zoe", 40)}

    def test_delete(self, db):
        db.delete("Sale", [("TV", "Mary")])
        assert len(db["Sale"]) == 0

    def test_violating_update_rolled_back(self, db):
        before = db.state()
        with pytest.raises(ConstraintViolation):
            db.insert("Sale", [("PC", "Ghost")])
        assert db.state() == before

    def test_delete_breaking_ind_rolled_back(self, db):
        with pytest.raises(ConstraintViolation):
            db.delete("Emp", [("Mary", 23)])  # Sale still references Mary
        assert ("Mary", 23) in db["Emp"]

    def test_transaction_across_relations(self, db):
        update = Update.of(
            *Update.insert("Emp", ("clerk", "age"), [("Zoe", 40)]),
            *Update.insert("Sale", ("item", "clerk"), [("PC", "Zoe")]),
        )
        effective = db.apply(update)
        assert set(effective.relations()) == {"Emp", "Sale"}
        assert db.satisfies_constraints()

    def test_describe(self, db):
        text = db.describe()
        assert "Emp" in text and "Sale" in text
