"""Unit tests for the metrics registry: instruments, aggregation, facade."""

from __future__ import annotations

import pytest

from repro.algebra.evaluator import EvalStats
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_increments_and_rejects_decrease():
    counter = Counter("warehouse.refreshes")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    gauge = Gauge("warehouse.rows")
    gauge.set(10)
    gauge.inc(5)
    gauge.dec(3)
    assert gauge.value == 12


def test_histogram_summary_statistics():
    histogram = Histogram("warehouse.refresh_seconds")
    for value in (0.5, 1.5, 1.0):
        histogram.observe(value)
    assert histogram.count == 3
    assert histogram.total == pytest.approx(3.0)
    assert histogram.minimum == 0.5
    assert histogram.maximum == 1.5
    assert histogram.mean == pytest.approx(1.0)
    snap = histogram.snapshot()
    assert snap["count"] == 3 and snap["mean"] == pytest.approx(1.0)


def test_histogram_buckets():
    histogram = Histogram("integrator.batch_size", buckets=(1, 10, 100))
    for value in (1, 2, 50, 1000):
        histogram.observe(value)
    assert histogram.snapshot()["buckets"] == {
        "le_1": 1,
        "le_10": 1,
        "le_100": 1,
        "inf": 1,
    }
    with pytest.raises(ValueError):
        Histogram("bad", buckets=(10, 1))


def test_registry_get_or_create_and_kind_clash():
    registry = MetricsRegistry()
    counter = registry.counter("evaluator.joins")
    assert registry.counter("evaluator.joins") is counter
    with pytest.raises(ValueError):
        registry.gauge("evaluator.joins")
    assert registry.get("evaluator.joins") is counter
    assert registry.get("missing") is None
    assert "evaluator.joins" in registry
    assert len(registry) == 1


def test_registry_aggregation_across_sources():
    """Several producers write into one registry; snapshot sees the union."""
    registry = MetricsRegistry()
    registry.counter("integrator.notifications").inc(7)
    registry.counter("integrator.updates.Sale").inc(4)
    registry.counter("integrator.updates.Emp").inc(3)
    registry.gauge("warehouse.rows").set(120)
    registry.histogram("warehouse.batch_size").observe(3)
    registry.histogram("warehouse.batch_size").observe(5)
    snapshot = registry.snapshot()
    assert snapshot["integrator.notifications"] == 7
    assert snapshot["integrator.updates.Sale"] == 4
    assert snapshot["warehouse.batch_size"]["count"] == 2
    assert snapshot["warehouse.batch_size"]["sum"] == 8
    assert list(snapshot) == sorted(snapshot)  # deterministic ordering


def test_merge_eval_stats_facade():
    """EvalStats remains the hot-path struct; merging publishes it as metrics."""
    registry = MetricsRegistry()
    stats = EvalStats()
    stats.nodes_evaluated = 10
    stats.cache_hits = 4
    stats.cache_misses = 6
    stats.antijoin_fastpaths = 2
    registry.merge_eval_stats(stats)
    registry.merge_eval_stats(stats)  # counters accumulate across refreshes
    assert registry.value("evaluator.nodes_evaluated") == 20
    assert registry.value("evaluator.cache_hits") == 8
    assert registry.value("evaluator.antijoin_fastpaths") == 4
    # Zero-valued fields are not materialized as empty counters.
    assert "evaluator.joins" not in registry


def test_ratio_helper():
    registry = MetricsRegistry()
    assert registry.ratio("evaluator.cache_hits", "evaluator.cache_misses") == 0.0
    registry.counter("evaluator.cache_hits").inc(3)
    registry.counter("evaluator.cache_misses").inc(1)
    assert registry.ratio(
        "evaluator.cache_hits", "evaluator.cache_misses"
    ) == pytest.approx(0.75)


def test_describe_renders_every_instrument():
    registry = MetricsRegistry()
    assert "no metrics" in registry.describe()
    registry.counter("a.count").inc(2)
    registry.gauge("b.rows").set(9)
    registry.histogram("c.seconds").observe(0.5)
    text = registry.describe()
    for fragment in ("a.count", "counter", "b.rows", "gauge", "c.seconds", "histogram"):
        assert fragment in text
