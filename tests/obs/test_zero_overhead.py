"""The disabled-tracing path must not allocate a single Span.

The evaluator and maintenance engine branch to their traced twins only when a
tracer is attached; with the default ``tracer=None`` the hot path is the same
code PR 1 benchmarked. These tests make that guarantee explicit: we poison
``Span.__init__`` and run a full initialize + refresh — if any layer created a
span, the workload would blow up.
"""

from __future__ import annotations

import pytest

from repro import Update, Warehouse, parse
from repro.algebra.evaluator import evaluate
from repro.obs.trace import Span


@pytest.fixture
def poisoned_span(monkeypatch):
    def explode(self, *args, **kwargs):
        raise AssertionError("Span allocated while tracing is disabled")

    monkeypatch.setattr(Span, "__init__", explode)


def test_tracing_is_off_by_default(figure1_catalog, figure1_database, sold_view):
    warehouse = Warehouse.specify(figure1_catalog, [sold_view], method="prop22")
    assert warehouse.tracer is None


def test_warehouse_lifecycle_allocates_no_spans(
    poisoned_span, figure1_catalog, figure1_database, sold_view
):
    warehouse = Warehouse.specify(figure1_catalog, [sold_view], method="prop22")
    warehouse.initialize(figure1_database)
    warehouse.insert("Sale", [("Computer", "Paula")])
    warehouse.delete("Sale", [("TV set", "Mary")])
    warehouse.answer("pi[clerk](Sale) union pi[clerk](Emp)")
    warehouse.reconstruct("Emp")
    assert ("Computer", "Paula", 32) in warehouse.relation("Sold")


def test_evaluator_allocates_no_spans_untraced(poisoned_span, figure1_database):
    state = figure1_database.state()
    result = evaluate(parse("Sale join Emp"), state)
    assert len(result) == 3


def test_batch_apply_allocates_no_spans(
    poisoned_span, figure1_catalog, figure1_database, sold_view
):
    warehouse = Warehouse.specify(figure1_catalog, [sold_view], method="prop22")
    warehouse.initialize(figure1_database)
    warehouse.apply_batch(
        [
            Update.insert("Sale", ("item", "clerk"), [("Computer", "Paula")]),
            Update.delete("Sale", ("item", "clerk"), [("VCR", "Mary")]),
        ]
    )
    assert ("Computer", "Paula", 32) in warehouse.relation("Sold")


def test_spans_flow_again_after_disable(figure1_catalog, figure1_database, sold_view):
    warehouse = Warehouse.specify(figure1_catalog, [sold_view], method="prop22")
    warehouse.initialize(figure1_database)
    warehouse.enable_tracing()
    warehouse.insert("Sale", [("Computer", "Paula")])
    assert warehouse.last_trace("refresh") is not None
    warehouse.disable_tracing()
    assert warehouse.tracer is None
    assert warehouse.last_trace("refresh") is None
