"""Unit tests for the span/tracer layer: nesting, timing, attributes, sinks."""

from __future__ import annotations

import json

import pytest

from repro.obs.trace import JsonlSink, RingBufferCollector, Span, Tracer


class FakeClock:
    """A deterministic clock: each reading advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


def test_span_nesting_structure():
    collector = RingBufferCollector()
    tracer = Tracer([collector])
    with tracer.span("refresh"):
        with tracer.span("normalize_update"):
            with tracer.span("reconstruct"):
                pass
        with tracer.span("maintain"):
            pass
    root = collector.last()
    assert root.name == "refresh"
    assert [c.name for c in root.children] == ["normalize_update", "maintain"]
    assert [c.name for c in root.children[0].children] == ["reconstruct"]
    assert root.children[0].children[0].parent_id == root.children[0].span_id
    assert root.parent_id is None


def test_span_timing_uses_clock():
    clock = FakeClock(step=1.0)
    collector = RingBufferCollector()
    tracer = Tracer([collector], clock=clock)
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    outer = collector.last("outer")
    inner = outer.children[0]
    # Clock readings: outer start=0, inner start=1, inner end=2, outer end=3.
    assert inner.duration == pytest.approx(1.0)
    assert outer.duration == pytest.approx(3.0)
    assert outer.started_at < inner.started_at
    assert inner.ended_at < outer.ended_at


def test_attribute_capture_at_open_and_via_set_and_annotate():
    collector = RingBufferCollector()
    tracer = Tracer([collector])
    with tracer.span("join", rows_in_left=10) as span:
        tracer.annotate(index_hit=True)   # what the evaluator does mid-span
        span.set(rows_out=7)
    trace = collector.last("join")
    assert trace.attributes == {"rows_in_left": 10, "index_hit": True, "rows_out": 7}


def test_annotate_targets_innermost_open_span():
    collector = RingBufferCollector()
    tracer = Tracer([collector])
    with tracer.span("outer"):
        with tracer.span("inner"):
            tracer.annotate(fastpath="anti_join")
    root = collector.last("outer")
    assert "fastpath" not in root.attributes
    assert root.children[0].attributes["fastpath"] == "anti_join"
    # Outside any span, annotate is a silent no-op.
    tracer.annotate(ignored=True)


def test_current_span_tracking():
    tracer = Tracer()
    assert tracer.current is None
    with tracer.span("a") as a:
        assert tracer.current is a
        with tracer.span("b") as b:
            assert tracer.current is b
        assert tracer.current is a
    assert tracer.current is None


def test_span_survives_exception_and_is_still_collected():
    collector = RingBufferCollector()
    tracer = Tracer([collector])
    with pytest.raises(ValueError):
        with tracer.span("refresh"):
            with tracer.span("maintain"):
                raise ValueError("boom")
    root = collector.last("refresh")
    assert root is not None
    assert root.ended_at is not None
    assert [c.name for c in root.children] == ["maintain"]
    assert tracer.current is None  # the stack unwound cleanly


def test_walk_find_and_find_all():
    tracer = Tracer([collector := RingBufferCollector()])
    with tracer.span("refresh"):
        with tracer.span("maintain"):
            with tracer.span("read"):
                tracer.annotate(relation="Sold")
        with tracer.span("maintain"):
            with tracer.span("read"):
                tracer.annotate(relation="C_Emp")
    root = collector.last()
    assert [s.name for s in root.walk()][0] == "refresh"
    assert len(list(root.walk())) == 5
    assert root.find("read").attributes["relation"] == "Sold"  # pre-order: first
    assert [s.attributes["relation"] for s in root.find_all("read")] == [
        "Sold",
        "C_Emp",
    ]
    assert root.find("nonexistent") is None


def test_ring_buffer_capacity_and_last_filter():
    collector = RingBufferCollector(capacity=2)
    tracer = Tracer([collector])
    for index in range(4):
        with tracer.span("refresh", index=index):
            pass
    assert len(collector) == 2
    assert [root.attributes["index"] for root in collector.roots] == [2, 3]
    assert collector.last("refresh").attributes["index"] == 3
    assert collector.last("initialize") is None
    collector.clear()
    assert len(collector) == 0
    with pytest.raises(ValueError):
        RingBufferCollector(capacity=0)


def test_jsonl_sink_round_trip(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    with JsonlSink(path, mode="w") as sink:
        tracer = Tracer([sink], clock=FakeClock(step=0.001))
        with tracer.span("refresh", relations=["Sale"]):
            with tracer.span("read"):
                tracer.annotate(relation="Sold", rows_out=3)
    records = [json.loads(line) for line in open(path) if line.strip()]
    assert [r["name"] for r in records] == ["refresh", "read"]
    root, read = records
    assert root["parent_id"] is None
    assert read["parent_id"] == root["span_id"]
    assert read["attributes"] == {"relation": "Sold", "rows_out": 3}
    assert root["duration_ms"] == pytest.approx(3.0)


def test_multiple_collectors_all_receive_roots():
    first, second = RingBufferCollector(), RingBufferCollector()
    tracer = Tracer([first, second])
    with tracer.span("refresh"):
        pass
    assert first.last("refresh") is second.last("refresh")


def test_only_roots_are_collected():
    collector = RingBufferCollector()
    tracer = Tracer([collector])
    with tracer.span("refresh"):
        with tracer.span("maintain"):
            pass
    assert len(collector) == 1  # the child arrived inside the root, not separately
