"""Tests for trace rendering (explain) and JSONL report aggregation."""

from __future__ import annotations

import pytest

from repro.obs.explain import explain_refresh, render_trace, source_relations_read
from repro.obs.report import group_key, render_report, report_file, summarize
from repro.obs.trace import JsonlSink, RingBufferCollector, Tracer


def build_refresh_trace():
    collector = RingBufferCollector()
    tracer = Tracer([collector])
    with tracer.span("refresh", relations=["Sale"]):
        with tracer.span("normalize_update"):
            with tracer.span("reconstruct", relation="Sale"):
                with tracer.span("read", relation="C_Sale", rows_out=0):
                    pass
        with tracer.span("maintain", relation="Sold"):
            with tracer.span("difference", fastpath="anti_join", rows_out=1):
                pass
            with tracer.span("read", relation="Sold", cached=True, rows_out=3):
                pass
    return collector.last("refresh")


def test_render_trace_tree_shape():
    text = render_trace(build_refresh_trace())
    lines = text.splitlines()
    assert lines[0].startswith("refresh ")
    assert any(line.lstrip("│ ├└─").startswith("normalize_update") for line in lines)
    # Tree connectors present and nesting is visible.
    assert any("├─" in line for line in lines)
    assert any("└─" in line for line in lines)
    # The fast-path span is starred and carries its attribute.
    starred = [line for line in lines if "difference*" in line]
    assert starred and "fastpath=anti_join" in starred[0]


def test_render_trace_max_depth_truncates():
    text = render_trace(build_refresh_trace(), max_depth=1)
    assert "..." in text
    assert "reconstruct" not in text


def test_explain_header_summarizes_fastpaths_and_reads():
    text = explain_refresh(build_refresh_trace())
    assert "fast paths fired: 1 (anti_join)" in text
    assert "cached sub-results served: 1" in text
    assert "relations read: C_Sale, Sold" in text


def test_source_relations_read_detects_leaks():
    trace = build_refresh_trace()
    # The warehouse-only trace reads no source relation...
    assert source_relations_read(trace, ["Sale", "Emp"]) == []
    # ...and a trace that *did* read one is caught.
    collector = RingBufferCollector()
    tracer = Tracer([collector])
    with tracer.span("refresh"):
        with tracer.span("read", relation="Emp", rows_out=3):
            pass
    assert source_relations_read(collector.last(), ["Sale", "Emp"]) == ["Emp"]


def test_group_key_refinement():
    assert group_key({"name": "read", "attributes": {"relation": "Sold"}}) == "read:Sold"
    assert (
        group_key({"name": "difference", "attributes": {"fastpath": "anti_join"}})
        == "difference[anti_join]"
    )
    assert group_key({"name": "join", "attributes": {}}) == "join"


def test_summarize_and_render_report():
    records = [
        {"name": "join", "duration_ms": 2.0, "attributes": {"rows_out": 5}},
        {"name": "join", "duration_ms": 4.0, "attributes": {"rows_out": 7}},
        {"name": "read", "duration_ms": 0.5, "attributes": {"relation": "Sold", "cached": True}},
    ]
    aggregates = {a.key: a for a in summarize(records)}
    assert aggregates["join"].count == 2
    assert aggregates["join"].total_ms == pytest.approx(6.0)
    assert aggregates["join"].mean_ms == pytest.approx(3.0)
    assert aggregates["join"].rows_out == 12
    assert aggregates["read:Sold"].cached == 1
    table = render_report(list(aggregates.values()), sort="total")
    first_data_row = table.splitlines()[2]
    assert first_data_row.startswith("join")  # sorted by total time, descending
    with pytest.raises(ValueError):
        render_report([], sort="bogus")


def test_report_file_round_trip(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    with JsonlSink(path, mode="w") as sink:
        tracer = Tracer([sink])
        with tracer.span("refresh"):
            with tracer.span("join", rows_out=4):
                pass
    text = report_file(path)
    assert "1 trace(s)" in text
    assert "join" in text and "refresh" in text


def test_report_file_rejects_garbage(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("not json\n")
    with pytest.raises(ValueError):
        report_file(str(path))


def test_report_file_empty(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert "no spans" in report_file(str(path))
