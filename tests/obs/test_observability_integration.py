"""End-to-end observability over the paper's workloads.

Two theorems become *observable* here. Update independence (Thm 4.1):
refresh traces contain zero ``read`` spans over source relations — the
maintenance expressions only touch warehouse storage. And the PR 1 fast
paths: on the E1 workload the Prop 2.2 complement shape drives the
anti-join rewrite during initialization, and ``explain()`` names it.
"""

from __future__ import annotations

import pytest

from repro import Catalog, Database, View, Warehouse, parse
from repro.integrator import Channel, ComplementIntegrator, Source
from repro.obs.explain import source_relations_read


@pytest.fixture
def traced_e1(figure1_catalog, figure1_database, sold_view):
    """Figure 1 warehouse with tracing on from before initialization.

    Pinned to the interpreted path (``compile_plans=False``): these tests
    assert the *evaluator's* observability — per-operator spans, EvalStats
    metrics, semi-join fast-path annotations — which compiled refresh
    closures intentionally bypass (their traces are covered in
    ``tests/compiler`` and ``tests/differential``).
    """
    warehouse = Warehouse.specify(
        figure1_catalog, [sold_view], method="prop22", compile_plans=False
    )
    warehouse.enable_tracing()
    warehouse.initialize(figure1_database)
    return warehouse


class TestE1Explain:
    def test_initialize_explain_names_the_antijoin_fastpath(self, traced_e1):
        # C_Sale = Sale - pi[item, clerk](Sale join Emp) has exactly the
        # Prop 2.2 shape the anti-join rewrite targets.
        text = traced_e1.explain(name="initialize")
        assert "difference*" in text
        assert "fastpath=anti_join" in text
        assert "anti_join" in text.splitlines()[1]  # named in the summary header

    def test_refresh_explain_names_the_semijoin_fastpath(self, traced_e1):
        traced_e1.insert("Sale", [("Computer", "Paula")])
        text = traced_e1.explain(name="refresh")
        assert "refresh" in text.splitlines()[0] or "refresh" in text
        assert "fastpath=semi_join" in text

    def test_default_explain_is_newest_trace(self, traced_e1):
        assert "initialize" in traced_e1.explain()
        traced_e1.insert("Sale", [("Computer", "Paula")])
        assert "refresh" in traced_e1.explain()

    def test_explain_requires_tracing(
        self, figure1_catalog, figure1_database, sold_view
    ):
        from repro.core.warehouse import WarehouseError

        warehouse = Warehouse.specify(figure1_catalog, [sold_view])
        warehouse.initialize(figure1_database)
        with pytest.raises(WarehouseError):
            warehouse.explain()

    def test_refresh_reads_no_source_relation(self, traced_e1):
        # Thm 4.1, observed: the Example 1.1 insertion is maintained
        # entirely from {Sold, C_Emp, C_Sale}.
        traced_e1.insert("Sale", [("Computer", "Paula")])
        root = traced_e1.last_trace("refresh")
        assert source_relations_read(root, ["Sale", "Emp"]) == []
        read = {s.attributes.get("relation") for s in root.find_all("read")}
        assert read  # the trace does record reads — warehouse relations and
        # the in-memory delta placeholders (Sale__ins / Sale__del), never
        # the source relation Sale itself.
        warehouse_reads = {r for r in read if "__" not in r}
        assert warehouse_reads <= {"Sold", "C_Emp", "C_Sale"}


class TestExample22UpdateIndependence:
    """Example 2.2: R(A,B,C) with V1 = pi_AB(R), V2 = pi_BC(R), V3 = sigma_B=b(R)."""

    @pytest.fixture
    def traced_warehouse(self):
        catalog = Catalog()
        catalog.relation("R", ("A", "B", "C"))
        views = [
            View("V1", parse("pi[A, B](R)")),
            View("V2", parse("pi[B, C](R)")),
            View("V3", parse("sigma[B = 'b'](R)")),
        ]
        warehouse = Warehouse.specify(catalog, views, method="prop22")
        db = Database(catalog)
        db.load("R", [("a", "a", "a"), ("a", "b", "c"), ("b", "a", "a")])
        warehouse.initialize(db)
        warehouse.enable_tracing()
        return warehouse

    def test_refresh_trace_shows_zero_source_reads(self, traced_warehouse):
        traced_warehouse.insert("R", [("c", "b", "a"), ("c", "c", "c")])
        root = traced_warehouse.last_trace("refresh")
        assert root is not None
        assert source_relations_read(root, ["R"]) == []

    def test_deletion_refresh_is_also_source_free(self, traced_warehouse):
        traced_warehouse.delete("R", [("a", "a", "a")])
        root = traced_warehouse.last_trace("refresh")
        assert source_relations_read(root, ["R"]) == []
        # The warehouse still agrees with a source-side recomputation.
        assert traced_warehouse.reconstruct("R").to_set() == {
            ("a", "b", "c"),
            ("b", "a", "a"),
        }


class TestMetricsEndToEnd:
    def test_warehouse_refresh_metrics(self, traced_e1):
        traced_e1.insert("Sale", [("Computer", "Paula")])
        traced_e1.insert("Sale", [("Radio", "John")])
        metrics = traced_e1.metrics
        assert metrics.value("warehouse.refreshes") == 2
        assert metrics.value("warehouse.rows_inserted") >= 2
        assert metrics.get("warehouse.refresh_seconds").count == 2
        # EvalStats is folded in under the evaluator.* prefix.
        assert metrics.value("evaluator.nodes_evaluated") > 0
        assert metrics.value("evaluator.semijoin_fastpaths") >= 1
        # Storage gauges track the warehouse relations.
        assert metrics.value("warehouse.rows") == traced_e1.storage_rows()
        assert metrics.value("warehouse.complement_rows.C_Emp") == 0  # Paula sold

    def test_integrator_metrics_share_the_registry(self, figure1_catalog):
        channel = Channel()
        sales = Source("SalesDB", figure1_catalog, ("Sale",), channel)
        company = Source("CompanyDB", figure1_catalog, ("Emp",), channel)
        sales.load("Sale", [("TV", "Mary")])
        company.load("Emp", [("Mary", 23), ("Paula", 32)])
        integrator = ComplementIntegrator(
            figure1_catalog,
            [View("Sold", parse("Sale join Emp"))],
            method="prop22",
        )
        integrator.initialize([sales, company])
        sales.insert("Sale", [("Computer", "Paula")])
        sales.insert("Sale", [("Radio", "Mary")])
        integrator.process_all(channel)
        metrics = integrator.metrics
        assert metrics.value("integrator.notifications") == 2
        assert metrics.value("integrator.updates.Sale") == 2
        assert "integrator.updates.Emp" not in metrics
        assert metrics.value("warehouse.refreshes") == 2
