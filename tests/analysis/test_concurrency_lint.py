"""Unit tests for :mod:`repro.analysis.concurrency_lint` (W01xx)."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.concurrency_lint import (
    default_lint_files,
    lint_concurrency,
    lint_file,
)


def write_sample(tmp_path, source):
    path = tmp_path / "sample.py"
    path.write_text(textwrap.dedent(source))
    return str(path)


def codes(findings):
    return [finding.code for finding in findings]


class TestW0101CommitAtomicity:
    def test_async_commit_is_flagged(self, tmp_path):
        path = write_sample(
            tmp_path,
            """
            class Warehouse:
                async def commit(self, batch):
                    self.state = batch
            """,
        )
        assert "W0101" in codes(lint_file(path))

    def test_await_inside_commit_is_flagged(self, tmp_path):
        path = write_sample(
            tmp_path,
            """
            class Warehouse:
                async def commit(self, batch):
                    await self.flush()
            """,
        )
        findings = [f for f in lint_file(path) if f.code == "W0101"]
        # Both the async declaration and the suspension point are reported.
        assert len(findings) == 2

    def test_suspending_call_inside_sync_commit_is_flagged(self, tmp_path):
        path = write_sample(
            tmp_path,
            """
            class Warehouse:
                def shard_commit(self, lock, batch):
                    lock.acquire()
                    self.state = batch
            """,
        )
        (finding,) = lint_file(path)
        assert finding.code == "W0101"
        assert "acquire" in finding.message

    def test_sync_commit_without_suspension_is_clean(self, tmp_path):
        path = write_sample(
            tmp_path,
            """
            class Warehouse:
                def commit(self, batch):
                    self.state = batch
                    self.version += 1
            """,
        )
        assert lint_file(path) == []

    def test_nested_function_is_not_attributed_to_commit(self, tmp_path):
        path = write_sample(
            tmp_path,
            """
            class Warehouse:
                def commit(self, batch):
                    def later():
                        return lock.acquire()
                    self.state = batch
            """,
        )
        assert lint_file(path) == []


class TestW0102LockOrder:
    def test_unsorted_acquisition_is_flagged(self, tmp_path):
        path = write_sample(
            tmp_path,
            """
            async def refresh(locks, parts):
                for index in reversed(sorted(parts)):
                    await locks[index].acquire()
            """,
        )
        assert codes(lint_file(path)) == ["W0102"]

    def test_direct_sorted_loop_is_clean(self, tmp_path):
        path = write_sample(
            tmp_path,
            """
            async def refresh(locks, parts):
                for index in sorted(parts):
                    await locks[index].acquire()
            """,
        )
        assert lint_file(path) == []

    def test_loop_over_variable_assigned_from_sorted_is_clean(self, tmp_path):
        path = write_sample(
            tmp_path,
            """
            async def refresh(locks, parts):
                ordered = sorted(parts)
                for index in ordered:
                    await locks[index].acquire()
            """,
        )
        assert lint_file(path) == []

    def test_sync_functions_are_out_of_scope(self, tmp_path):
        path = write_sample(
            tmp_path,
            """
            def helper(lock):
                lock.acquire()
            """,
        )
        assert lint_file(path) == []


class TestW0103LockScopedMutation:
    def test_mutation_outside_try_finally_is_flagged(self, tmp_path):
        path = write_sample(
            tmp_path,
            """
            async def refresh(warehouse, parts, update):
                for index in sorted(parts):
                    warehouse.apply_to_shard(index, update)
            """,
        )
        assert codes(lint_file(path)) == ["W0103"]

    def test_mutation_inside_releasing_finally_is_clean(self, tmp_path):
        path = write_sample(
            tmp_path,
            """
            async def refresh(warehouse, locks, parts, update):
                for index in sorted(parts):
                    await locks[index].acquire()
                try:
                    for index in sorted(parts):
                        warehouse.apply_to_shard(index, update)
                    warehouse.commit(parts)
                finally:
                    for index in parts:
                        locks[index].release()
            """,
        )
        assert lint_file(path) == []

    def test_try_without_release_does_not_count(self, tmp_path):
        path = write_sample(
            tmp_path,
            """
            async def refresh(warehouse, parts, update):
                try:
                    warehouse.commit(parts)
                finally:
                    warehouse.log("done")
            """,
        )
        assert codes(lint_file(path)) == ["W0103"]


class TestDriver:
    def test_own_runtime_is_clean(self):
        assert lint_concurrency() == []

    def test_default_targets_are_the_shipped_runtime(self):
        files = default_lint_files()
        assert len(files) == 2
        assert any(path.endswith("sharding.py") for path in files)
        assert any(path.endswith("async_integrator.py") for path in files)

    def test_findings_deduplicate_by_code_and_span(self, tmp_path):
        path = write_sample(
            tmp_path,
            """
            async def refresh(lock):
                await lock.acquire()
            """,
        )
        findings = lint_concurrency([path, path])
        assert len(findings) == 1

    def test_broken_sample_triggers_all_three_families(self, tmp_path):
        path = write_sample(
            tmp_path,
            """
            class Broken:
                async def commit(self, batch):
                    await self.flush()

                async def refresh(self, locks, parts, update):
                    for index in reversed(sorted(parts)):
                        await locks[index].acquire()
                    self.apply_to_shard(0, update)
            """,
        )
        found = set(codes(lint_file(path)))
        assert found == {"W0101", "W0102", "W0103"}
