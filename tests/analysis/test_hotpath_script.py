"""Tests for ``scripts/check_hotpath.py`` (the hot-path AST lint).

Covers both rule sets: R1–R5 over the evaluators and C1/C2 over the
columnar kernel module (dispatched by filename).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO = Path(__file__).parents[2]


def load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_hotpath", REPO / "scripts" / "check_hotpath.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


CHECKER = load_checker()


def violations_for(tmp_path, source, filename="candidate.py"):
    path = tmp_path / filename
    path.write_text(source)
    return CHECKER.check_file(str(path))


class TestRealTargets:
    def test_shipped_hot_paths_are_clean(self):
        for target in CHECKER.DEFAULT_TARGETS:
            assert CHECKER.check_file(str(target)) == [], target

    def test_default_targets_cover_both_engines(self):
        names = {Path(str(t)).name for t in CHECKER.DEFAULT_TARGETS}
        assert {"evaluator.py", "columnar_eval.py", "columnar.py"} <= names

    def test_main_exit_codes(self, capsys):
        assert CHECKER.main([]) == 0
        assert "OK" in capsys.readouterr().out


class TestRules:
    def test_r1_span_outside_allowlist(self, tmp_path):
        found = violations_for(
            tmp_path,
            "def _eval(expr, ctx):\n"
            "    with ctx.tracer.span('x'):\n"
            "        pass\n",
        )
        assert any("R1" in v for v in found)

    def test_r1_span_allowed_in_eval_traced(self, tmp_path):
        found = violations_for(
            tmp_path,
            "def _eval_traced(expr, ctx):\n"
            "    with ctx.tracer.span('x'):\n"
            "        pass\n",
        )
        assert found == []

    def test_r2_timing_calls(self, tmp_path):
        found = violations_for(
            tmp_path,
            "from time import perf_counter\n"
            "def f():\n"
            "    return perf_counter()\n",
        )
        assert any("R2" in v for v in found)

    def test_r3_unguarded_tracer_call(self, tmp_path):
        found = violations_for(
            tmp_path,
            "def _natural_join(ctx):\n"
            "    ctx.tracer.annotate(rows=1)\n",
        )
        assert any("R3" in v for v in found)

    def test_r3_guarded_tracer_call_ok(self, tmp_path):
        found = violations_for(
            tmp_path,
            "def _natural_join(ctx):\n"
            "    if ctx.tracer is not None:\n"
            "        ctx.tracer.annotate(rows=1)\n",
        )
        assert found == []

    def test_r3_guarded_call_inside_loop_ok(self, tmp_path):
        # The per-operand annotate in _eval_difference: guarded calls are
        # fine even inside loops; only *unguarded* ones are flagged.
        found = violations_for(
            tmp_path,
            "def _eval_difference(ctx, operands):\n"
            "    for index, operand in enumerate(operands):\n"
            "        if ctx.tracer is not None:\n"
            "            ctx.tracer.annotate(step=index)\n",
        )
        assert found == []

    def test_r4_span_reference(self, tmp_path):
        found = violations_for(
            tmp_path,
            "from repro.obs import Span\n"
            "def f():\n"
            "    return Span('x', 0.0)\n",
        )
        assert any("R4" in v for v in found)

    def test_r5_environ_read(self, tmp_path):
        found = violations_for(
            tmp_path,
            "import os\n"
            "def _eval(expr, ctx):\n"
            "    return os.environ.get('X')\n",
        )
        assert any("R5" in v for v in found)

    def test_r5_getenv_read(self, tmp_path):
        found = violations_for(
            tmp_path,
            "from os import getenv\n"
            "def _eval(expr, ctx):\n"
            "    return getenv('X')\n",
        )
        assert any("R5" in v for v in found)

    def test_r5_sanitizer_env_name(self, tmp_path):
        found = violations_for(
            tmp_path,
            "def _eval(expr, ctx):\n"
            "    flag = 'REPRO_CHECK_INVARIANTS'\n"
            "    return flag\n",
        )
        assert any("R5" in v for v in found)

    def test_main_reports_violations(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text("import time\n")
        assert CHECKER.main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "R2" in out
        assert "violation" in out


class TestColumnarKernelRules:
    """C1/C2 apply only to files named ``columnar.py``."""

    def test_c1_loop_statement_in_kernel(self, tmp_path):
        found = violations_for(
            tmp_path,
            "def select(self, cond):\n"
            "    out = []\n"
            "    for row in self.rows:\n"
            "        out.append(row)\n"
            "    return out\n",
            filename="columnar.py",
        )
        assert any("C1" in v for v in found)

    def test_c1_while_statement_in_kernel(self, tmp_path):
        found = violations_for(
            tmp_path,
            "def join(left, right):\n"
            "    i = 0\n"
            "    while i < 10:\n"
            "        i += 1\n",
            filename="columnar.py",
        )
        assert any("C1" in v for v in found)

    def test_c1_comprehensions_allowed(self, tmp_path):
        found = violations_for(
            tmp_path,
            "def select(self, cond):\n"
            "    return [c for c in self.columns if c]\n"
            "def join(left, right):\n"
            "    return {i for i, k in enumerate(left) if k in right}\n",
            filename="columnar.py",
        )
        assert found == []

    def test_c1_facade_methods_may_loop(self, tmp_path):
        found = violations_for(
            tmp_path,
            "def from_relation(cls, relation):\n"
            "    for row in relation.rows:\n"
            "        pass\n"
            "def patched(self, added, removed):\n"
            "    for row in removed:\n"
            "        pass\n"
            "def _ensure_positions(self):\n"
            "    for i in range(3):\n"
            "        pass\n",
            filename="columnar.py",
        )
        assert found == []

    def test_c2_materialization_outside_facade(self, tmp_path):
        found = violations_for(
            tmp_path,
            "def join(left, right):\n"
            "    return Relation._raw(left.attributes, set())\n"
            "def select(self, cond):\n"
            "    return self.to_relation()\n",
            filename="columnar.py",
        )
        assert sum("C2" in v for v in found) == 2

    def test_c2_facade_may_materialize(self, tmp_path):
        found = violations_for(
            tmp_path,
            "def to_relation(self):\n"
            "    return Relation._raw(self.attributes, frozenset())\n",
            filename="columnar.py",
        )
        assert found == []

    def test_evaluator_rules_not_applied_to_kernels(self, tmp_path):
        # The kernel module may mention REPRO_CHECK_INVARIANTS etc. in
        # docstrings without tripping evaluator rule R5.
        found = violations_for(
            tmp_path,
            "def select(self, cond):\n"
            "    return [c for c in self.columns]\n",
            filename="columnar.py",
        )
        assert found == []
