"""Golden-file tests: one spec fixture per diagnostic code.

Each ``specs/<code>_*.json`` fixture triggers exactly the diagnostic its
name announces; ``golden/<name>.txt`` pins the full rendered lint output
(text format, including paper references and fix hints). Regenerate after
an intentional wording change with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/analysis/test_golden.py

and review the diff like any other code change.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis import lint_file, render_text

SPEC_DIR = Path(__file__).parent / "specs"
GOLDEN_DIR = Path(__file__).parent / "golden"

# Fixtures whose diagnostic only fires under a specific complement method.
METHODS = {
    "w0041_unpruned": "prop22",
    "w0042_no_certificate": "trivial",
}

FIXTURES = sorted(path.stem for path in SPEC_DIR.glob("*.json"))


def expected_code(stem: str) -> str:
    return stem.split("_")[0].upper()


@pytest.mark.parametrize("stem", FIXTURES)
def test_fixture_triggers_its_code(stem):
    report = lint_file(
        str(SPEC_DIR / f"{stem}.json"), method=METHODS.get(stem, "thm22")
    )
    assert report.error is None
    assert expected_code(stem) in {d.code for d in report.diagnostics}


@pytest.mark.parametrize("stem", FIXTURES)
def test_rendered_output_matches_golden(stem):
    report = lint_file(
        str(SPEC_DIR / f"{stem}.json"), method=METHODS.get(stem, "thm22")
    )
    # Pin only the diagnostics, not the absolute fixture path.
    rendered = render_text([report._replace(path=f"specs/{stem}.json")])
    golden = GOLDEN_DIR / f"{stem}.txt"
    if os.environ.get("REGEN_GOLDEN"):
        golden.write_text(rendered + "\n")
    assert golden.exists(), f"golden file missing; regenerate with REGEN_GOLDEN=1"
    assert rendered + "\n" == golden.read_text()


def test_every_wxxxx_code_has_a_fixture():
    from repro.analysis import CATALOG

    covered = {expected_code(stem) for stem in FIXTURES}
    # W01xx diagnostics lint Python source (the concurrency protocol), not
    # spec files; their trigger samples live in test_concurrency_lint.py.
    lint_codes = {
        code
        for code in CATALOG
        if code.startswith("W") and not code.startswith("W01")
    }
    assert lint_codes <= covered


def test_docs_catalog_documents_every_code():
    from repro.analysis import CATALOG

    text = (Path(__file__).parents[2] / "docs" / "lint.md").read_text()
    missing = [code for code in CATALOG if code not in text]
    assert missing == [], f"docs/lint.md lacks {missing}"
