"""Golden certificate files: one pinned prover document per example spec.

``golden/certificates/<stem>.cert.json`` pins the full certificate
document ``python -m repro prove --certificates`` writes for each
``examples/specs/*.json``. The prover is deterministic end to end (sorted
keys, sorted rows, seeded replay), so any diff is a semantic change to
the prover, the complement construction, or the example — review it as
such. Regenerate after an intentional change with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/analysis/test_golden_certificates.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.analysis.prover import PROVED, REFUTED, certificate_json, prove_file

REPO = Path(__file__).parents[2]
SPEC_DIR = REPO / "examples" / "specs"
GOLDEN_DIR = Path(__file__).parent / "golden" / "certificates"

STEMS = sorted(path.stem for path in SPEC_DIR.glob("*.json"))


def prove_example(stem):
    result = prove_file(str(SPEC_DIR / f"{stem}.json"))
    # Pin a repo-relative spec path regardless of the runner's cwd.
    return result._replace(path=f"examples/specs/{stem}.json")


def test_there_are_example_specs():
    assert STEMS, "examples/specs is empty"


@pytest.mark.parametrize("stem", STEMS)
def test_every_example_spec_is_decided(stem):
    result = prove_example(stem)
    assert result.error is None
    assert result.verdict in (PROVED, REFUTED)
    assert result.ok, f"{stem}: {result.verdict} but expected {result.expect}"


@pytest.mark.parametrize("stem", STEMS)
def test_certificate_matches_golden(stem):
    rendered = certificate_json(prove_example(stem))
    golden = GOLDEN_DIR / f"{stem}.cert.json"
    if os.environ.get("REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        golden.write_text(rendered)
    assert golden.exists(), "golden certificate missing; regenerate with REGEN_GOLDEN=1"
    assert rendered == golden.read_text()


def test_at_least_one_refuted_example_with_small_witness():
    refuted = [r for r in map(prove_example, STEMS) if r.verdict == REFUTED]
    assert refuted, "no deliberately non-independent example spec"
    for result in refuted:
        assert result.witness is not None
        assert result.witness.max_rows_per_relation() <= 3


def test_golden_documents_are_valid_json_with_version():
    for stem in STEMS:
        golden = GOLDEN_DIR / f"{stem}.cert.json"
        if golden.exists():
            document = json.loads(golden.read_text())
            assert document["version"] == 1
            assert document["spec"] == f"examples/specs/{stem}.json"
