"""Unit tests for :mod:`repro.analysis.query` and ``python -m repro prove-query``."""

from __future__ import annotations

import json

import pytest

from repro import Catalog, parse
from repro.__main__ import main
from repro.analysis.query import (
    DEFAULT_ROW_ESTIMATE,
    PROVED,
    REFUTED,
    UNKNOWN,
    QueryProofResult,
    QueryVerdict,
    check_query_certificate,
    estimate_cost,
    prove_queries_file,
    query_exit_code,
    search_query_counterexample,
    shrink_query_witness,
    verify_query_witness,
)
from repro.analysis.specfile import load_target

INVERTIBLE_SPEC = {
    "relations": [
        {"name": "Sale", "attributes": ["item", "clerk"]},
        {"name": "Emp", "attributes": ["clerk", "age"], "key": ["clerk"]},
    ],
    "views": [{"name": "Sold", "definition": "Sale join Emp"}],
}

LOSSY_SPEC = {
    "relations": [{"name": "Sale", "attributes": ["item", "clerk"]}],
    "views": [{"name": "Clerks", "definition": "pi[clerk](Sale)"}],
    "prover": {"mode": "views-only", "expect": "refuted"},
    "lint": {"ignore": {"W0031": "deliberately lossy test spec"}},
}


def write(tmp_path, data, name="spec.json"):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return str(path)


def with_queries(base, items, **options):
    spec = json.loads(json.dumps(base))
    spec["queries"] = dict({"items": items}, **options)
    return spec


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------


SCOPE = {"Sold": ("item", "clerk", "age"), "Dim": ("region",)}


class TestCostModel:
    def test_scan_uses_declared_estimate(self):
        cost = estimate_cost(parse("Sold"), SCOPE, rows={"Sold": 70})
        assert cost.total == 70
        assert cost.rows_out == 70
        (op,) = cost.operators
        assert (op.operator, op.kernel) == ("scan", "columnar.scan")

    def test_scan_defaults_when_no_estimate(self):
        cost = estimate_cost(parse("Sold"), SCOPE)
        assert cost.total == DEFAULT_ROW_ESTIMATE

    def test_select_halves_per_conjunct(self):
        cost = estimate_cost(
            parse("sigma[item = 'TV' and age = 3](Sold)"), SCOPE,
            rows={"Sold": 100},
        )
        select = cost.operators[-1]
        assert select.rows_out == 25  # 100 -> 50 -> 25
        assert select.cost == 100  # one vectorized pass over the input

    def test_join_with_shared_attribute_is_hash_join(self):
        cost = estimate_cost(
            parse("Sold join Sold2"),
            {"Sold": ("item", "clerk"), "Sold2": ("clerk", "age")},
            rows={"Sold": 10, "Sold2": 40},
        )
        join = cost.operators[-1]
        assert join.kernel == "columnar.hash_join"
        assert join.rows_out == 40
        assert join.cost == 10 + 40 + 40

    def test_join_without_shared_attribute_is_cartesian(self):
        cost = estimate_cost(
            parse("Sold join Dim"), SCOPE, rows={"Sold": 10, "Dim": 5}
        )
        join = cost.operators[-1]
        assert join.kernel == "columnar.cartesian"
        assert join.rows_out == 50

    def test_rename_is_free(self):
        cost = estimate_cost(
            parse("rho[item -> product](Sold)"), SCOPE, rows={"Sold": 9}
        )
        rename = cost.operators[-1]
        assert rename.cost == 0
        assert rename.rows_out == 9

    def test_union_and_difference(self):
        cost = estimate_cost(
            parse("pi[clerk](Sold) union pi[clerk](Sold)"), SCOPE,
            rows={"Sold": 8},
        )
        assert cost.operators[-1].rows_out == 16
        cost = estimate_cost(
            parse("pi[clerk](Sold) minus pi[clerk](Sold)"), SCOPE,
            rows={"Sold": 8},
        )
        assert cost.operators[-1].rows_out == 8

    def test_budget_gate(self):
        over = estimate_cost(parse("Sold"), SCOPE, rows={"Sold": 100}, budget=99)
        under = estimate_cost(parse("Sold"), SCOPE, rows={"Sold": 100}, budget=100)
        assert not over.within_budget
        assert under.within_budget
        assert over.to_dict()["within_budget"] is False

    def test_deterministic(self):
        expr = parse("pi[age](sigma[item = 'TV'](Sold))")
        assert estimate_cost(expr, SCOPE) == estimate_cost(expr, SCOPE)


# ----------------------------------------------------------------------
# Witness search, shrinking, verification
# ----------------------------------------------------------------------


def lossy_setup():
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    definitions = {"Clerks": parse("pi[clerk](Sale)")}
    return catalog, definitions


class TestWitnessSearch:
    def test_lossy_identity_query_is_refuted(self):
        catalog, definitions = lossy_setup()
        outcome = search_query_counterexample(catalog, definitions, parse("Sale"))
        assert outcome.witness is not None
        assert outcome.states_examined > 0

    def test_witness_verifies_independently(self):
        catalog, definitions = lossy_setup()
        witness = search_query_counterexample(
            catalog, definitions, parse("Sale")
        ).witness
        assert verify_query_witness(catalog, definitions, parse("Sale"), witness) == []

    def test_witness_is_shrunk_to_a_local_minimum(self):
        # Re-shrinking the returned witness must be a no-op: no single row
        # can be removed while keeping the divergence.
        catalog, definitions = lossy_setup()
        query = parse("Sale")
        witness = search_query_counterexample(catalog, definitions, query).witness
        again = shrink_query_witness(witness, catalog, definitions, query)
        assert again.max_rows_per_relation() == witness.max_rows_per_relation()
        assert witness.max_rows_per_relation() <= 2

    def test_tampered_witness_fails_verification(self):
        catalog, definitions = lossy_setup()
        query = parse("Sale")
        witness = search_query_counterexample(catalog, definitions, query).witness
        tampered = witness._replace(right=dict(witness.left))
        assert verify_query_witness(catalog, definitions, query, tampered)
        tampered = witness._replace(left_answer=witness.right_answer)
        assert verify_query_witness(catalog, definitions, query, tampered)

    def test_determined_view_query_finds_no_witness(self):
        # pi[clerk](Sale) IS the stored view: no two states with equal
        # images can disagree on it.
        catalog, definitions = lossy_setup()
        outcome = search_query_counterexample(
            catalog, definitions, parse("pi[clerk](Sale)")
        )
        assert outcome.witness is None
        assert outcome.exhausted


# ----------------------------------------------------------------------
# Verdicts and certificates
# ----------------------------------------------------------------------


class TestDecisionProcedure:
    def test_invertible_spec_proves_by_inversion(self, tmp_path):
        spec = with_queries(
            INVERTIBLE_SPEC,
            [{"query": "pi[age](sigma[item = 'TV'](Sale) join Emp)"}],
        )
        result = prove_queries_file(write(tmp_path, spec))
        (verdict,) = result.queries
        assert verdict.verdict == PROVED
        assert verdict.method == "inversion"
        assert verdict.ok
        assert "inversions" in verdict.certificate
        assert result.translation_digest is not None

    def test_lossy_view_instance_proves_by_fold(self, tmp_path):
        spec = with_queries(
            LOSSY_SPEC, [{"query": "pi[clerk](Sale)", "expect": "proved"}]
        )
        result = prove_queries_file(write(tmp_path, spec))
        (verdict,) = result.queries
        assert verdict.verdict == PROVED
        assert verdict.method == "view-fold"
        assert verdict.certificate["folds"] == {"Clerks": "pi[clerk](Sale)"}
        assert verdict.certificate["read_set"] == ["Clerks"]

    def test_lossy_identity_is_refuted_with_witness(self, tmp_path):
        spec = with_queries(LOSSY_SPEC, [{"query": "Sale", "expect": "refuted"}])
        result = prove_queries_file(write(tmp_path, spec))
        (verdict,) = result.queries
        assert verdict.verdict == REFUTED
        assert verdict.method == "search"
        assert verdict.witness is not None
        assert verdict.certificate is None

    def test_undeclared_relation_is_an_error(self, tmp_path):
        spec = with_queries(INVERTIBLE_SPEC, [{"query": "Sale join Ghost"}])
        result = prove_queries_file(write(tmp_path, spec))
        (verdict,) = result.queries
        assert verdict.verdict == UNKNOWN
        assert verdict.error is not None
        assert not verdict.ok

    def test_default_queries_are_per_relation_identities(self, tmp_path):
        result = prove_queries_file(write(tmp_path, INVERTIBLE_SPEC))
        assert sorted(v.name for v in result.queries) == ["Emp", "Sale"]
        assert all(v.verdict == PROVED for v in result.queries)

    def test_load_failure_becomes_error_result(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        result = prove_queries_file(str(path))
        assert result.error is not None
        assert not result.ok


class TestCertificateChecking:
    def proved_certificate(self, tmp_path):
        spec = with_queries(INVERTIBLE_SPEC, [{"query": "pi[age](Emp)"}])
        path = write(tmp_path, spec)
        result = prove_queries_file(path)
        (verdict,) = result.queries
        assert verdict.verdict == PROVED
        return load_target(path).catalog, verdict.certificate

    def test_fresh_certificate_validates(self, tmp_path):
        catalog, certificate = self.proved_certificate(tmp_path)
        assert check_query_certificate(catalog, certificate) == []

    def test_source_reading_plan_is_rejected(self, tmp_path):
        catalog, certificate = self.proved_certificate(tmp_path)
        tampered = dict(certificate, optimized="pi[age](Emp)")
        problems = check_query_certificate(catalog, tampered)
        assert any("source relation" in p for p in problems)

    def test_read_set_mismatch_is_rejected(self, tmp_path):
        catalog, certificate = self.proved_certificate(tmp_path)
        tampered = dict(certificate, read_set=["Sold"])
        problems = check_query_certificate(catalog, tampered)
        assert any("read_set" in p for p in problems)

    def test_wrong_translation_fails_replay(self, tmp_path):
        catalog, certificate = self.proved_certificate(tmp_path)
        # Swap the answer for a different (still warehouse-only) column.
        tampered = dict(certificate)
        tampered["translated"] = tampered["optimized"] = "pi[clerk](Sold)"
        tampered["read_set"] = ["Sold"]
        problems = check_query_certificate(catalog, tampered)
        assert any("replay" in p for p in problems)

    def test_unparseable_certificate_is_rejected(self, tmp_path):
        catalog, certificate = self.proved_certificate(tmp_path)
        tampered = dict(certificate, optimized="pi[(((")
        problems = check_query_certificate(catalog, tampered)
        assert any("parse" in p for p in problems)

    def test_missing_warehouse_section_is_rejected(self, tmp_path):
        catalog, certificate = self.proved_certificate(tmp_path)
        tampered = {k: v for k, v in certificate.items() if k != "warehouse"}
        assert check_query_certificate(catalog, tampered)


# ----------------------------------------------------------------------
# Exit codes
# ----------------------------------------------------------------------


def result_with(verdict, expect, error=None):
    return QueryProofResult(
        "spec.json",
        "with-complement",
        (
            QueryVerdict(
                "q", "Sale", verdict, "search", "detail",
                expect=expect, error=error,
            ),
        ),
    )


class TestExitCodeSemantics:
    def test_expected_verdicts_pass(self):
        assert query_exit_code([result_with(PROVED, "proved")]) == 0
        assert query_exit_code([result_with(REFUTED, "refuted")]) == 0

    def test_mismatch_fails(self):
        assert query_exit_code([result_with(REFUTED, "proved")]) == 1
        assert query_exit_code([result_with(PROVED, "refuted")]) == 1

    def test_unknown_lenient_by_default_strict_otherwise(self):
        unknown = result_with(UNKNOWN, "proved")
        assert query_exit_code([unknown]) == 0
        assert query_exit_code([unknown], strict=True) == 1

    def test_unknown_fails_a_refuted_expectation(self):
        assert query_exit_code([result_with(UNKNOWN, "refuted")]) == 1

    def test_pinned_unknown_passes_even_strict(self):
        pinned = result_with(UNKNOWN, "unknown")
        assert query_exit_code([pinned]) == 0
        assert query_exit_code([pinned], strict=True) == 0

    def test_errors_exit_two(self):
        assert query_exit_code([result_with(UNKNOWN, "proved", error="boom")]) == 2
        broken = QueryProofResult("spec.json", "with-complement", (), error="io")
        assert query_exit_code([broken]) == 2


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestCli:
    def test_proved_as_expected_exits_zero(self, tmp_path, capsys):
        assert main(["prove-query", write(tmp_path, INVERTIBLE_SPEC)]) == 0
        out = capsys.readouterr().out
        assert "PROVED" in out
        assert "OK" in out

    def test_expectation_mismatch_exits_one(self, tmp_path, capsys):
        spec = with_queries(
            INVERTIBLE_SPEC, [{"query": "pi[age](Emp)", "expect": "refuted"}]
        )
        assert main(["prove-query", write(tmp_path, spec)]) == 1

    def test_load_error_exits_two(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["prove-query", str(path)]) == 2

    def test_json_document_shape(self, tmp_path, capsys):
        path = write(tmp_path, INVERTIBLE_SPEC)
        assert main(["prove-query", path, "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "query-translation"
        assert document["ok"] is True
        assert document["summary"]["proved"] == 2
        (result,) = document["results"]
        assert "translation_digest" in result
        for entry in result["queries"]:
            assert entry["verdict"] == "PROVED"
            assert "digest" in entry

    def test_json_refuted_carries_witness(self, tmp_path, capsys):
        path = write(tmp_path, LOSSY_SPEC)
        assert main(["prove-query", path, "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        (result,) = document["results"]
        (entry,) = result["queries"]
        assert entry["verdict"] == "REFUTED"
        assert entry["witness"]["kind"] == "query"

    def test_certificates_flag_writes_one_document_per_file(
        self, tmp_path, capsys
    ):
        out_dir = tmp_path / "certs"
        proved = write(tmp_path, INVERTIBLE_SPEC, "proved.json")
        lossy = write(tmp_path, LOSSY_SPEC, "lossy.json")
        assert (
            main(
                ["prove-query", proved, lossy, "--certificates", str(out_dir)]
            )
            == 0
        )
        proved_doc = json.loads((out_dir / "proved.query.json").read_text())
        lossy_doc = json.loads((out_dir / "lossy.query.json").read_text())
        assert proved_doc["ok"] is True
        assert lossy_doc["summary"]["refuted"] == 1

    def test_strict_passes_on_fully_decided_specs(self, tmp_path, capsys):
        proved = write(tmp_path, INVERTIBLE_SPEC, "proved.json")
        lossy = write(tmp_path, LOSSY_SPEC, "lossy.json")
        assert main(["prove-query", "--strict", proved, lossy]) == 0
