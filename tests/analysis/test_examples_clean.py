"""The shipped example specs and workloads must lint clean (strict gate).

This is the test-side mirror of the CI gate: every spec under
``examples/specs/`` and every programmatic workload definition stays free
of findings, so ``python -m repro lint --strict examples/specs/*.json``
exits 0.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import exit_code, lint_file, lint_views

EXAMPLES = sorted((Path(__file__).parents[2] / "examples" / "specs").glob("*.json"))


def test_examples_exist():
    assert EXAMPLES, "examples/specs/ must ship at least one spec"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_spec_lints_clean_strict(path):
    report = lint_file(str(path))
    assert report.error is None
    assert report.diagnostics == []
    assert exit_code([report], strict=True) == 0


def test_tpcd_workload_lints_clean():
    from repro.workloads.tpcd import standard_views, tpcd_catalog

    assert lint_views(tpcd_catalog(), standard_views()) == []
