"""Golden sharding certificates: one pinned prover document per sharded spec.

``golden/certificates/<stem>.sharding.json`` pins the full document
``python -m repro prove-sharding --certificates`` writes for each
``examples/specs/*.json`` that declares a ``"sharding"`` section. The
prover is deterministic end to end (sorted keys, sorted rows, seeded
replay, deterministic counterexample search), so any diff is a semantic
change to the shard-independence analysis, the routing math, or the
example — review it as such. Regenerate after an intentional change with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/analysis/test_golden_sharding.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.analysis.concurrency import (
    PROVED,
    REFUTED,
    check_sharding_certificate,
    prove_sharding_file,
    replay_interleaving,
    sharding_certificate_json,
    verify_sharding_witness,
)
from repro.analysis.specfile import load_target
from repro.core.routing import ShardRouting

REPO = Path(__file__).parents[2]
SPEC_DIR = REPO / "examples" / "specs"
GOLDEN_DIR = Path(__file__).parent / "golden" / "certificates"

SHARDED_STEMS = sorted(
    path.stem
    for path in SPEC_DIR.glob("*.json")
    if "sharding" in json.loads(path.read_text())
)


def prove_example(stem):
    result = prove_sharding_file(str(SPEC_DIR / f"{stem}.json"))
    # Pin a repo-relative spec path regardless of the runner's cwd.
    return result._replace(path=f"examples/specs/{stem}.json")


def test_there_are_sharded_example_specs():
    assert SHARDED_STEMS, "no example spec declares a sharding section"


@pytest.mark.parametrize("stem", SHARDED_STEMS)
def test_every_sharded_example_is_decided(stem):
    result = prove_example(stem)
    assert result.error is None
    assert result.verdict in (PROVED, REFUTED)
    assert result.ok, f"{stem}: {result.verdict} but expected {result.expect}"


@pytest.mark.parametrize("stem", SHARDED_STEMS)
def test_certificate_matches_golden(stem):
    rendered = sharding_certificate_json(prove_example(stem))
    golden = GOLDEN_DIR / f"{stem}.sharding.json"
    if os.environ.get("REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        golden.write_text(rendered)
    assert golden.exists(), "golden certificate missing; regenerate with REGEN_GOLDEN=1"
    assert rendered == golden.read_text()


@pytest.mark.parametrize("stem", SHARDED_STEMS)
def test_golden_certificate_revalidates(stem):
    """Checked-in PROVED certificates replay clean against today's code."""
    document = json.loads((GOLDEN_DIR / f"{stem}.sharding.json").read_text())
    target = load_target(str(SPEC_DIR / f"{stem}.json"))
    if document["verdict"] != PROVED:
        return
    problems = check_sharding_certificate(target.catalog, document["certificate"])
    assert problems == []


def test_refuted_examples_carry_replayable_witnesses():
    refuted = [r for r in map(prove_example, SHARDED_STEMS) if r.verdict == REFUTED]
    assert refuted, "no deliberately refuted sharded example spec"
    for result in refuted:
        witness = result.witness
        assert witness is not None
        if witness["kind"] == "interleaving":
            # Both orders must really diverge when replayed from scratch.
            from repro.analysis.concurrency import InterleavingWitness

            rebuilt = InterleavingWitness(
                relation=witness["relation"],
                attributes=tuple(witness["attributes"]),
                start=tuple(tuple(r) for r in witness["start"]),
                first_inserts=tuple(tuple(r) for r in witness["first"]["inserts"]),
                first_deletes=tuple(tuple(r) for r in witness["first"]["deletes"]),
                second_inserts=tuple(tuple(r) for r in witness["second"]["inserts"]),
                second_deletes=tuple(tuple(r) for r in witness["second"]["deletes"]),
                first_then_second=tuple(
                    tuple(r) for r in witness["first_then_second"]
                ),
                second_then_first=tuple(
                    tuple(r) for r in witness["second_then_first"]
                ),
            )
            one, other = replay_interleaving(rebuilt)
            assert one != other
            assert one == rebuilt.first_then_second
            assert other == rebuilt.second_then_first
        else:
            assert witness["kind"] == "sharding"
            target = load_target(
                str(SPEC_DIR / Path(result.path).name)
            )
            from repro.core.complement import specify

            spec = specify(target.catalog, target.views)
            routings = {
                r.relation: ShardRouting(
                    r.relation, r.attribute, boundaries=r.boundaries, shards=r.shards
                )
                for r in target.sharding.routings
            }
            problems = verify_sharding_witness(
                spec.definitions_over_sources(),
                spec.source_scope(),
                routings,
                witness,
            )
            assert problems == []


def test_golden_documents_are_valid_json_with_version():
    for stem in SHARDED_STEMS:
        golden = GOLDEN_DIR / f"{stem}.sharding.json"
        document = json.loads(golden.read_text())
        assert document["version"] == 1
        assert document["kind"] == "sharding"
        assert document["spec"] == f"examples/specs/{stem}.json"
        if document["verdict"] == PROVED:
            assert "digest" in document
            assert "plan_cache_key" in document["certificate"]
