"""Unit tests for :mod:`repro.analysis.prover` and ``python -m repro prove``."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.analysis.prover import (
    PROVED,
    REFUTED,
    UNKNOWN,
    ProofResult,
    build_certificate,
    check_certificate,
    prove_exit_code,
    prove_file,
    prove_target,
    render_json,
    render_text,
)
from repro.analysis.dataflow import spec_read_sets
from repro.analysis.specfile import load_target
from repro import Catalog, View, parse, specify

FIGURE1_SPEC = {
    "relations": [
        {"name": "Sale", "attributes": ["item", "clerk"]},
        {"name": "Emp", "attributes": ["clerk", "age"], "key": ["clerk"]},
    ],
    "inclusions": [
        {
            "lhs": "Sale",
            "lhs_attributes": ["clerk"],
            "rhs": "Emp",
            "rhs_attributes": ["clerk"],
        }
    ],
    "views": [{"name": "Sold", "definition": "Sale join Emp"}],
}

LOSSY_SPEC = {
    "relations": [{"name": "Sale", "attributes": ["item", "clerk"]}],
    "views": [{"name": "Clerks", "definition": "pi[clerk](Sale)"}],
    "prover": {"mode": "views-only", "expect": "refuted"},
}

REPLICA_SPEC = {
    "relations": [
        {"name": "Emp", "attributes": ["clerk", "age"], "key": ["clerk"]}
    ],
    "views": [{"name": "Staff", "definition": "Emp"}],
    "prover": {"mode": "views-only"},
}


def write(tmp_path, data, name="spec.json"):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return str(path)


class TestProveTarget:
    def test_figure1_proved_with_certificate(self, tmp_path):
        result = prove_target(load_target(write(tmp_path, FIGURE1_SPEC)))
        assert result.verdict == PROVED
        assert result.ok
        assert result.certificate is not None
        assert result.certificate["dataflow"]["update_independent"] is True
        assert set(result.certificate["inversion"]) == {"Sale", "Emp"}

    def test_views_only_replica_proved(self, tmp_path):
        result = prove_target(load_target(write(tmp_path, REPLICA_SPEC)))
        assert result.verdict == PROVED
        assert result.mode == "views-only"
        # Views-only inversions reference view names, never sources.
        refs = result.certificate["inversion"]["Emp"]["references"]
        assert refs == ["Staff"]

    def test_views_only_lossy_refuted_with_minimal_witness(self, tmp_path):
        result = prove_target(load_target(write(tmp_path, LOSSY_SPEC)))
        assert result.verdict == REFUTED
        assert result.ok  # expectation is "refuted"
        assert result.witness is not None
        assert result.witness.max_rows_per_relation() <= 3

    def test_non_psj_views_fall_back_to_search(self, tmp_path):
        spec = {
            "relations": [
                {"name": "A", "attributes": ["x"], "key": ["x"]},
                {"name": "B", "attributes": ["x"], "key": ["x"]},
            ],
            "views": [{"name": "V", "definition": "A minus B"}],
            "prover": {"expect": "refuted"},
        }
        result = prove_target(load_target(write(tmp_path, spec)))
        assert result.verdict == REFUTED

    def test_unknown_when_search_exhausts_without_collision(self, tmp_path):
        # The selection keeps every row of the derived {0, 1} domain, so
        # the bounded search finds no collision; yet the emptiness
        # analysis cannot prove C empty. Honest incompleteness: UNKNOWN.
        spec = {
            "relations": [{"name": "A", "attributes": ["x"]}],
            "views": [{"name": "V", "definition": "sigma[x >= 0](A)"}],
            "prover": {"mode": "views-only"},
        }
        result = prove_target(load_target(write(tmp_path, spec)))
        assert result.verdict == UNKNOWN
        assert "exhaustively" in result.detail

    def test_mode_override_wins(self, tmp_path):
        result = prove_target(
            load_target(write(tmp_path, FIGURE1_SPEC)), mode="views-only"
        )
        assert result.mode == "views-only"
        assert result.verdict == REFUTED  # the join view alone is lossy


class TestCertificates:
    def _spec(self):
        catalog = Catalog()
        catalog.relation("Sale", ("item", "clerk"))
        catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
        # The IND makes the replay databases actually join (the generator
        # draws Sale.clerk from Emp's keys), so a wrong inversion cannot
        # hide behind an empty Sold.
        catalog.inclusion("Sale", ("clerk",), "Emp")
        return specify(catalog, [View("Sold", parse("Sale join Emp"))])

    def test_roundtrip_certificate_checks_clean(self):
        spec = self._spec()
        certificate = build_certificate(spec, spec_read_sets(spec), "with-complement")
        assert check_certificate(spec.catalog, certificate) == []

    def test_certificate_facts_cover_catalog(self):
        spec = self._spec()
        certificate = build_certificate(spec, spec_read_sets(spec), "with-complement")
        kinds = {fact["kind"] for fact in certificate["facts"]}
        assert "key" in kinds
        assert "cover" in kinds

    def test_inversion_referencing_source_is_rejected(self):
        spec = self._spec()
        certificate = build_certificate(spec, spec_read_sets(spec), "with-complement")
        tampered = json.loads(json.dumps(certificate))
        tampered["inversion"]["Sale"]["expression"] = "Sale"
        problems = check_certificate(spec.catalog, tampered)
        assert any("source relation" in p for p in problems)

    def test_missing_inversion_is_rejected(self):
        spec = self._spec()
        certificate = build_certificate(spec, spec_read_sets(spec), "with-complement")
        tampered = json.loads(json.dumps(certificate))
        del tampered["inversion"]["Emp"]
        problems = check_certificate(spec.catalog, tampered)
        assert any("no inversion" in p for p in problems)

    def test_wrong_inversion_fails_numeric_replay(self):
        spec = self._spec()
        certificate = build_certificate(spec, spec_read_sets(spec), "with-complement")
        tampered = json.loads(json.dumps(certificate))
        # C_Emp alone misses the Emp rows that joined into Sold.
        tampered["inversion"]["Emp"]["expression"] = "C_Emp"
        problems = check_certificate(spec.catalog, tampered)
        assert any("replay" in p for p in problems)

    def test_bogus_key_fact_is_rejected(self):
        spec = self._spec()
        certificate = build_certificate(spec, spec_read_sets(spec), "with-complement")
        tampered = json.loads(json.dumps(certificate))
        tampered["facts"].append(
            {"kind": "key", "relation": "Sale", "attributes": ["item"]}
        )
        problems = check_certificate(spec.catalog, tampered)
        assert any("key fact" in p for p in problems)

    def test_unparseable_expression_is_rejected(self):
        spec = self._spec()
        certificate = build_certificate(spec, spec_read_sets(spec), "with-complement")
        tampered = json.loads(json.dumps(certificate))
        tampered["inversion"]["Sale"]["expression"] = "pi[]("
        problems = check_certificate(spec.catalog, tampered)
        assert any("parse" in p for p in problems)


class TestExitCodes:
    def _result(self, verdict, expect="proved", error=None):
        return ProofResult(
            "x.json", verdict, "with-complement", "thm22", "d",
            expect=expect, error=error,
        )

    def test_all_expectations_met(self):
        results = [self._result(PROVED), self._result(REFUTED, expect="refuted")]
        assert prove_exit_code(results) == 0
        assert prove_exit_code(results, strict=True) == 0

    def test_unexpected_verdict_fails(self):
        assert prove_exit_code([self._result(REFUTED)]) == 1

    def test_unknown_fails_only_under_strict(self):
        results = [self._result(UNKNOWN)]
        assert prove_exit_code(results) == 0
        assert prove_exit_code(results, strict=True) == 1

    def test_unknown_fails_when_refutation_expected(self):
        assert prove_exit_code([self._result(UNKNOWN, expect="refuted")]) == 1

    def test_error_dominates(self):
        assert prove_exit_code([self._result(UNKNOWN, error="boom")]) == 2


class TestRendering:
    def test_text_summary_counts_verdicts(self, tmp_path):
        results = [
            prove_file(write(tmp_path, FIGURE1_SPEC, "a.json")),
            prove_file(write(tmp_path, LOSSY_SPEC, "b.json")),
        ]
        text = render_text(results)
        assert "OK: 2 file(s), 1 proved, 1 refuted, 0 unknown" in text
        assert "<- differs" in text  # the witness is printed inline

    def test_json_document_shape(self, tmp_path):
        results = [prove_file(write(tmp_path, FIGURE1_SPEC))]
        document = json.loads(render_json(results))
        assert document["ok"] is True
        assert document["summary"]["proved"] == 1
        [entry] = document["results"]
        assert entry["verdict"] == PROVED
        assert "certificate" in entry


class TestCli:
    def test_prove_clean_exits_zero(self, tmp_path, capsys):
        assert main(["prove", write(tmp_path, FIGURE1_SPEC)]) == 0
        out = capsys.readouterr().out
        assert "PROVED" in out
        assert "OK: 1 file(s)" in out

    def test_prove_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["prove", str(tmp_path / "missing.json")]) == 2
        assert "error:" in capsys.readouterr().out

    def test_prove_json_format(self, tmp_path, capsys):
        assert main(["prove", "--format", "json", write(tmp_path, LOSSY_SPEC)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["refuted"] == 1
        [entry] = document["results"]
        assert entry["witness"]["max_rows_per_relation"] <= 3

    def test_certificates_directory(self, tmp_path, capsys):
        path = write(tmp_path, FIGURE1_SPEC, "fig1.json")
        certs = tmp_path / "certs"
        assert main(["prove", "--certificates", str(certs), path]) == 0
        written = json.loads((certs / "fig1.cert.json").read_text())
        assert written["verdict"] == PROVED
        assert "inversion" in written["certificate"]

    def test_strict_fails_on_unknown(self, tmp_path, capsys):
        spec = {
            "relations": [{"name": "A", "attributes": ["x"]}],
            "views": [{"name": "V", "definition": "sigma[x >= 0](A)"}],
            "prover": {"mode": "views-only"},
        }
        path = write(tmp_path, spec)
        assert main(["prove", path]) == 0
        capsys.readouterr()
        assert main(["prove", "--strict", path]) == 1
        assert "UNKNOWN" in capsys.readouterr().out

    def test_max_model_size_flag(self, tmp_path, capsys):
        assert (
            main(["prove", "--max-model-size", "1", write(tmp_path, LOSSY_SPEC)])
            == 0
        )
        assert "REFUTED" in capsys.readouterr().out
