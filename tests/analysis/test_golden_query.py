"""Golden query-translation certificates: one pinned document per spec.

``golden/certificates/<stem>.query.json`` pins the full document
``python -m repro prove-query --certificates`` writes for each
``examples/specs/*.json`` — every example spec receives per-query
PROVED/REFUTED/UNKNOWN verdicts (declared ``"queries"`` section or
synthesized identity queries). The prover is deterministic end to end
(sorted keys, sorted rows, seeded replay, deterministic witness search),
so any diff is a semantic change to the translation machinery, the cost
model, or the example — review it as such. Regenerate after an
intentional change with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/analysis/test_golden_query.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.algebra.parser import parse
from repro.analysis.query import (
    PROVED,
    REFUTED,
    UNKNOWN,
    QueryWitness,
    check_query_certificate,
    prove_queries_file,
    query_certificate_json,
    verify_query_witness,
)
from repro.analysis.specfile import load_target
from repro.storage.relation import Relation

REPO = Path(__file__).parents[2]
SPEC_DIR = REPO / "examples" / "specs"
GOLDEN_DIR = Path(__file__).parent / "golden" / "certificates"

STEMS = sorted(path.stem for path in SPEC_DIR.glob("*.json"))


def prove_example(stem):
    result = prove_queries_file(str(SPEC_DIR / f"{stem}.json"))
    # Pin a repo-relative spec path regardless of the runner's cwd.
    return result._replace(path=f"examples/specs/{stem}.json")


def witness_definitions(stem, target):
    """The warehouse definitions the refutation search ran against."""
    return {view.name: view.definition for view in target.views}


def test_there_are_example_specs():
    assert STEMS, "examples/specs is empty"


@pytest.mark.parametrize("stem", STEMS)
def test_every_example_spec_queries_are_decided(stem):
    result = prove_example(stem)
    assert result.error is None
    assert result.queries, f"{stem}: no query received a verdict"
    for verdict in result.queries:
        assert verdict.verdict in (PROVED, REFUTED, UNKNOWN)
        assert verdict.ok, (
            f"{stem}/{verdict.name}: {verdict.verdict} but expected "
            f"{verdict.expect} ({verdict.error})"
        )


@pytest.mark.parametrize("stem", STEMS)
def test_certificate_matches_golden(stem):
    rendered = query_certificate_json(prove_example(stem))
    golden = GOLDEN_DIR / f"{stem}.query.json"
    if os.environ.get("REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        golden.write_text(rendered)
    assert golden.exists(), "golden certificate missing; regenerate with REGEN_GOLDEN=1"
    assert rendered == golden.read_text()


@pytest.mark.parametrize("stem", STEMS)
def test_golden_certificates_revalidate(stem):
    """Checked-in PROVED certificates replay clean against today's code."""
    document = json.loads((GOLDEN_DIR / f"{stem}.query.json").read_text())
    target = load_target(str(SPEC_DIR / f"{stem}.json"))
    checked = 0
    for entry in document["queries"]:
        if entry["verdict"] != PROVED:
            continue
        problems = check_query_certificate(target.catalog, entry["certificate"])
        assert problems == [], f"{stem}/{entry['name']}: {problems}"
        checked += 1
    if document["queries"] and all(
        entry["verdict"] == PROVED for entry in document["queries"]
    ):
        assert checked == len(document["queries"])


def test_refuted_queries_carry_replayable_witnesses():
    refuted = [
        (stem, verdict)
        for stem in STEMS
        for verdict in prove_example(stem).queries
        if verdict.verdict == REFUTED
    ]
    assert refuted, "no deliberately refuted query in any example spec"
    for stem, verdict in refuted:
        witness = verdict.witness
        assert witness is not None
        target = load_target(str(SPEC_DIR / f"{stem}.json"))
        problems = verify_query_witness(
            target.catalog,
            witness_definitions(stem, target),
            parse(verdict.query),
            witness,
        )
        assert problems == [], f"{stem}/{verdict.name}: {problems}"


def test_golden_witnesses_replay_from_json_alone():
    """REFUTED documents re-verify without trusting in-memory state."""
    replayed = 0
    for stem in STEMS:
        document = json.loads((GOLDEN_DIR / f"{stem}.query.json").read_text())
        target = load_target(str(SPEC_DIR / f"{stem}.json"))
        for entry in document["queries"]:
            if entry["verdict"] != REFUTED:
                continue
            doc = entry["witness"]
            attributes = {
                name: tuple(attrs) for name, attrs in doc["attributes"].items()
            }
            witness = QueryWitness(
                query=doc["query"],
                left={
                    name: Relation(
                        attributes[name], [tuple(r) for r in rows]
                    )
                    for name, rows in doc["left"].items()
                },
                right={
                    name: Relation(
                        attributes[name], [tuple(r) for r in rows]
                    )
                    for name, rows in doc["right"].items()
                },
                answer_attributes=tuple(doc["answer_attributes"]),
                left_answer=tuple(tuple(r) for r in doc["left_answer"]),
                right_answer=tuple(tuple(r) for r in doc["right_answer"]),
            )
            problems = verify_query_witness(
                target.catalog,
                witness_definitions(stem, target),
                parse(doc["query"]),
                witness,
            )
            assert problems == [], f"{stem}/{entry['name']}: {problems}"
            replayed += 1
    assert replayed, "no golden REFUTED witness to replay"


def test_at_least_one_of_each_verdict_across_examples():
    verdicts = {
        verdict.verdict for stem in STEMS for verdict in prove_example(stem).queries
    }
    assert PROVED in verdicts
    assert REFUTED in verdicts
    assert UNKNOWN in verdicts, (
        "no honest-UNKNOWN example query; selective_clerks.json should pin one"
    )


def test_golden_documents_are_valid_json_with_version():
    for stem in STEMS:
        golden = GOLDEN_DIR / f"{stem}.query.json"
        document = json.loads(golden.read_text())
        assert document["version"] == 1
        assert document["kind"] == "query-translation"
        assert document["spec"] == f"examples/specs/{stem}.json"
        for entry in document["queries"]:
            if entry["verdict"] == PROVED:
                assert "digest" in entry
                assert entry["certificate"]["read_set"], entry["name"]


def test_seeded_certificate_corruption_fails_loudly():
    """Acceptance: a tampered golden certificate must not revalidate."""
    corrupted = 0
    for stem in STEMS:
        document = json.loads((GOLDEN_DIR / f"{stem}.query.json").read_text())
        target = load_target(str(SPEC_DIR / f"{stem}.json"))
        sources = sorted(target.catalog.relation_names())
        for entry in document["queries"]:
            if entry["verdict"] != PROVED:
                continue
            # Corrupt the optimized plan to read a source relation.
            tampered = dict(entry["certificate"])
            tampered["optimized"] = sources[0]
            assert check_query_certificate(target.catalog, tampered), (
                f"{stem}/{entry['name']}: source-reading corruption passed"
            )
            corrupted += 1
            break
    assert corrupted, "no PROVED certificate available to corrupt"
