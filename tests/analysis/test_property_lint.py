"""Property tests tying the static analysis to the runtime.

The contract (module docstring of :mod:`repro.analysis.typecheck`): an
expression with no ERROR-level diagnostic never raises a schema error at
runtime — neither when its attributes are computed nor when it is
evaluated — and a view set that lints without errors can always be
specified and initialized.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Catalog,
    Database,
    Severity,
    View,
    Warehouse,
    evaluate,
    parse_condition,
)
from repro.algebra import expressions as E
from repro.analysis import lint_views, typecheck_expression
from repro.storage.relation import Relation

ATTRS = ("a", "b", "c", "d")
RELATIONS = {"R": ("a", "b"), "S": ("b", "c"), "T": ("c", "d")}


def expression_strategy():
    """Random small algebra expressions over R/S/T, valid or not."""
    leaves = st.sampled_from([E.RelationRef(name) for name in RELATIONS] + [
        E.RelationRef("Unknown")
    ])

    def extend(children):
        attrs = st.lists(
            st.sampled_from(ATTRS), min_size=1, max_size=3, unique=True
        ).map(tuple)
        condition = st.sampled_from(ATTRS).flatmap(
            lambda a: st.integers(0, 3).map(
                lambda v: parse_condition(f"{a} = {v}")
            )
        )
        return st.one_of(
            st.tuples(children, attrs).map(lambda t: E.Project(t[0], t[1])),
            st.tuples(children, condition).map(lambda t: E.Select(t[0], t[1])),
            st.tuples(children, children).map(lambda t: E.Join(t[0], t[1])),
            st.tuples(children, children).map(lambda t: E.Union(t[0], t[1])),
            st.tuples(children, children).map(lambda t: E.Difference(t[0], t[1])),
        )

    return st.recursive(leaves, extend, max_leaves=6)


def small_state():
    return {
        "R": Relation(("a", "b"), [(1, 2), (2, 2)]),
        "S": Relation(("b", "c"), [(2, 3)]),
        "T": Relation(("c", "d"), [(3, 4)]),
    }


class TestTypecheckSoundness:
    @settings(max_examples=200, deadline=None)
    @given(expression_strategy())
    def test_no_errors_implies_runtime_safety(self, expression):
        attrs, diags = typecheck_expression(expression, RELATIONS)
        if any(d.severity is Severity.ERROR for d in diags):
            return
        # Static OK: the runtime schema computation and the evaluator must
        # both accept the expression, and agree with the inferred schema.
        runtime_attrs = expression.attributes(RELATIONS)
        assert attrs is not None
        assert tuple(runtime_attrs) == attrs
        result = evaluate(expression, small_state())
        assert result.attributes == attrs

    @settings(max_examples=200, deadline=None)
    @given(expression_strategy())
    def test_runtime_acceptance_implies_no_errors(self, expression):
        # Contrapositive direction: whatever the runtime accepts, the
        # typechecker accepts too (no false ERROR positives).
        try:
            expression.attributes(RELATIONS)
        except Exception:
            return
        _, diags = typecheck_expression(expression, RELATIONS)
        assert not any(d.severity is Severity.ERROR for d in diags)


def view_set_strategy():
    definitions = st.sampled_from(
        [
            "R join S",
            "pi[a, b](R)",
            "sigma[a = 1](R)",
            "R",
            "S join T",
            "pi[b, c](S join T)",
        ]
    )
    return st.lists(definitions, min_size=1, max_size=3, unique=True)


class TestLintSoundness:
    @settings(max_examples=50, deadline=None)
    @given(view_set_strategy())
    def test_error_free_lint_implies_initializable(self, definitions):
        catalog = Catalog()
        for name, attrs in RELATIONS.items():
            catalog.relation(name, attrs, key=(attrs[0],))
        views = [
            View(f"V{i}", parse_expr) for i, parse_expr in enumerate(
                map(__import__("repro").parse, definitions)
            )
        ]
        diags = lint_views(catalog, views)
        assert not any(d.severity is Severity.ERROR for d in diags)
        warehouse = Warehouse.specify(catalog, views)
        db = Database(catalog)
        for name, relation in small_state().items():
            db.load(name, relation.rows)
        warehouse.initialize(db)
