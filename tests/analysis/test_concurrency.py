"""Unit tests for :mod:`repro.analysis.concurrency` — the sharding prover.

Covers the four analysis layers independently of the CLI driver: assembly
classification (including co-partitioning admission and refutable
failures), per-update-shape footprints, batch-commutativity decisions
with replayable interleaving witnesses, and the bounded replay search +
certificate self-validation loop.
"""

from __future__ import annotations

import pytest

from repro import Catalog, View, WarehouseError, parse
from repro.analysis.concurrency import (
    ASSEMBLE_INTERSECT,
    ASSEMBLE_REPLICATED,
    ASSEMBLE_UNION,
    PROVED,
    REFUTED,
    UNKNOWN,
    UNSHARDED,
    UnshardableError,
    analyze_expression,
    build_sharding_certificate,
    check_sharding_certificate,
    classify_assembly,
    decide_source_commutativity,
    decide_update_commutativity,
    default_ownership,
    prove_sharding_target,
    replay_interleaving,
    search_sharding_counterexample,
    shape_footprints,
    sharding_certificate_digest,
    sharding_exit_code,
    verify_sharding_witness,
    write_footprint,
    ShardingProofResult,
)
from repro.analysis.specfile import LintTarget, RoutingSpec, ShardingOptions
from repro.core.complement import specify
from repro.core.routing import ShardRouting


def sale_emp_catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    return catalog


def two_fact_catalog() -> Catalog:
    catalog = Catalog()
    catalog.relation("Orders", ("okey", "item"), key=("okey",))
    catalog.relation("Shipments", ("okey", "carrier"), key=("okey",))
    return catalog


def scope_of(catalog: Catalog):
    return {s.name: tuple(s.attributes) for s in catalog.schemas()}


def hash2(relation: str, attribute: str) -> ShardRouting:
    return ShardRouting(relation, attribute, shards=2)


class TestAnalyzeExpression:
    def test_unrouted_expression_is_replicated(self):
        catalog = sale_emp_catalog()
        analysis = analyze_expression(
            parse("Emp"), {"Sale": hash2("Sale", "item")}, scope_of(catalog), "V"
        )
        assert analysis.assemble == ASSEMBLE_REPLICATED
        assert analysis.contributors == frozenset()

    def test_routed_join_replicated_is_union(self):
        catalog = sale_emp_catalog()
        analysis = analyze_expression(
            parse("Sale join Emp"),
            {"Sale": hash2("Sale", "item")},
            scope_of(catalog),
            "V",
        )
        assert analysis.assemble == ASSEMBLE_UNION
        assert analysis.contributors == frozenset({"Sale"})
        assert "item" in analysis.rooted

    def test_co_partitioned_two_routed_join_is_union(self):
        catalog = two_fact_catalog()
        routings = {
            "Orders": hash2("Orders", "okey"),
            "Shipments": hash2("Shipments", "okey"),
        }
        analysis = analyze_expression(
            parse("Orders join Shipments"), routings, scope_of(catalog), "V"
        )
        assert analysis.assemble == ASSEMBLE_UNION
        assert analysis.contributors == frozenset({"Orders", "Shipments"})

    def test_two_routed_join_off_routing_attribute_is_refutable(self):
        catalog = Catalog()
        catalog.relation("A", ("x", "y"))
        catalog.relation("B", ("y", "z"))
        routings = {"A": hash2("A", "x"), "B": hash2("B", "z")}
        with pytest.raises(UnshardableError) as excinfo:
            analyze_expression(
                parse("A join B"), routings, scope_of(catalog), "V"
            )
        assert excinfo.value.refutable
        assert "routing attribute" in str(excinfo.value)

    def test_mispartitioned_join_is_refutable(self):
        catalog = two_fact_catalog()
        routings = {
            "Orders": ShardRouting("Orders", "okey", boundaries=[4]),
            "Shipments": hash2("Shipments", "okey"),
        }
        with pytest.raises(UnshardableError) as excinfo:
            analyze_expression(
                parse("Orders join Shipments"), routings, scope_of(catalog), "V"
            )
        assert excinfo.value.refutable
        assert "not co-partitioned" in str(excinfo.value)

    def test_projecting_away_routing_attribute_loses_rootedness(self):
        # Unioning a non-rooted slice image with a rooted one is mere
        # absence of proof (UNKNOWN), not a provable loss — unlike the
        # refutable mis-partitioned join.
        catalog = sale_emp_catalog()
        with pytest.raises(UnshardableError) as excinfo:
            analyze_expression(
                parse("pi[clerk](Sale) union pi[clerk](Sale)"),
                {"Sale": hash2("Sale", "item")},
                scope_of(catalog),
                "V",
            )
        assert not excinfo.value.refutable
        assert "retain the routing attribute" in str(excinfo.value)


class TestClassifyAssembly:
    def test_figure1_layout(self):
        catalog = sale_emp_catalog()
        spec = specify(catalog, [View("Sold", parse("Sale join Emp"))])
        report = classify_assembly(
            spec.definitions_over_sources(),
            spec.source_scope(),
            {"Sale": hash2("Sale", "item")},
        )
        assert report.assembly["Sold"] == ASSEMBLE_UNION
        assert ASSEMBLE_INTERSECT in report.assembly.values()
        assert report.co_partitioned == ()

    def test_co_partitioned_group_is_recorded(self):
        catalog = two_fact_catalog()
        spec = specify(
            catalog, [View("Fulfilled", parse("Orders join Shipments"))]
        )
        report = classify_assembly(
            spec.definitions_over_sources(),
            spec.source_scope(),
            {
                "Orders": hash2("Orders", "okey"),
                "Shipments": hash2("Shipments", "okey"),
            },
        )
        assert ("Orders", "Shipments") in report.co_partitioned


class TestFootprints:
    def test_shapes_cover_every_relation_and_kind(self):
        catalog = sale_emp_catalog()
        spec = specify(catalog, [View("Sold", parse("Sale join Emp"))])
        footprints = shape_footprints(spec, {"Sale": hash2("Sale", "item")})
        labels = {fp.shape.label() for fp in footprints}
        assert {"Sale:insert", "Sale:delete", "Emp:insert", "Emp:delete"} == labels
        assert len(footprints) == 4

    def test_routed_flag_tracks_routing(self):
        catalog = sale_emp_catalog()
        spec = specify(catalog, [View("Sold", parse("Sale join Emp"))])
        footprints = shape_footprints(spec, {"Sale": hash2("Sale", "item")})
        by_relation = {fp.shape.relation: fp.routed for fp in footprints}
        assert by_relation["Sale"] is True
        assert by_relation["Emp"] is False

    def test_write_footprint_covers_actual_refresh_writes(self):
        catalog = sale_emp_catalog()
        spec = specify(catalog, [View("Sold", parse("Sale join Emp"))])
        writes = write_footprint(spec, ["Sale"])
        assert "Sold" in writes
        assert write_footprint(spec, []) == frozenset()


class TestCommutativity:
    def test_disjoint_relations_commute(self):
        witness = decide_update_commutativity(
            {"A": ((("x",),), ())},
            {"B": ((("y",),), ())},
            {"A": ("a",), "B": ("b",)},
        )
        assert witness is None

    def test_same_insert_commutes(self):
        row = (("TV", "Mary"),)
        witness = decide_update_commutativity(
            {"Sale": (row, ())}, {"Sale": (row, ())}, {"Sale": ("item", "clerk")}
        )
        assert witness is None

    def test_insert_vs_delete_refuted_with_divergent_replay(self):
        row = ("TV", "Mary")
        witness = decide_update_commutativity(
            {"Sale": (((row),), ())},
            {"Sale": ((), ((row),))},
            {"Sale": ("item", "clerk")},
        )
        assert witness is not None
        one, other = replay_interleaving(witness)
        assert one != other
        assert one == witness.first_then_second
        assert other == witness.second_then_first

    def test_deleting_different_rows_commutes(self):
        witness = decide_update_commutativity(
            {"Sale": ((), (("TV", "Mary"),))},
            {"Sale": ((), (("Car", "Ann"),))},
            {"Sale": ("item", "clerk")},
        )
        assert witness is None

    def test_witness_start_state_is_minimal(self):
        row = ("TV", "Mary")
        witness = decide_update_commutativity(
            {"Sale": ((row,), ())},
            {"Sale": ((), (row,))},
            {"Sale": ("item", "clerk")},
        )
        assert witness is not None
        assert len(witness.start) <= 1

    def test_default_ownership_always_commutes(self):
        catalog = sale_emp_catalog()
        results = decide_source_commutativity(catalog, default_ownership(catalog))
        assert results
        assert all(result.commutes for result in results)

    def test_shared_ownership_is_refuted(self):
        catalog = sale_emp_catalog()
        results = decide_source_commutativity(
            catalog, {"feed_a": ("Sale",), "feed_b": ("Sale", "Emp")}
        )
        (result,) = results
        assert not result.commutes
        assert result.shared == ("Sale",)
        one, other = replay_interleaving(result.witness)
        assert one != other


class TestCounterexampleSearch:
    def test_mispartitioned_layout_yields_witness(self):
        catalog = two_fact_catalog()
        spec = specify(
            catalog, [View("Fulfilled", parse("Orders join Shipments"))]
        )
        routings = {
            "Orders": ShardRouting("Orders", "okey", boundaries=[4]),
            "Shipments": hash2("Shipments", "okey"),
        }
        witness = search_sharding_counterexample(
            spec.definitions_over_sources(), spec.source_scope(), routings
        )
        assert witness is not None
        problems = verify_sharding_witness(
            spec.definitions_over_sources(),
            spec.source_scope(),
            routings,
            witness.to_dict(),
        )
        assert problems == []

    def test_sound_layout_yields_no_witness(self):
        catalog = two_fact_catalog()
        spec = specify(
            catalog, [View("Fulfilled", parse("Orders join Shipments"))]
        )
        routings = {
            "Orders": hash2("Orders", "okey"),
            "Shipments": hash2("Shipments", "okey"),
        }
        assert (
            search_sharding_counterexample(
                spec.definitions_over_sources(), spec.source_scope(), routings
            )
            is None
        )

    def test_tampered_witness_is_rejected(self):
        catalog = two_fact_catalog()
        spec = specify(
            catalog, [View("Fulfilled", parse("Orders join Shipments"))]
        )
        routings = {
            "Orders": ShardRouting("Orders", "okey", boundaries=[4]),
            "Shipments": hash2("Shipments", "okey"),
        }
        witness = search_sharding_counterexample(
            spec.definitions_over_sources(), spec.source_scope(), routings
        ).to_dict()
        witness["state"] = {name: [] for name in witness["state"]}
        problems = verify_sharding_witness(
            spec.definitions_over_sources(),
            spec.source_scope(),
            routings,
            witness,
        )
        assert problems and "does not diverge" in problems[0]


class TestCertificate:
    def build(self):
        catalog = sale_emp_catalog()
        spec = specify(catalog, [View("Sold", parse("Sale join Emp"))])
        routings = {"Sale": hash2("Sale", "item")}
        report = classify_assembly(
            spec.definitions_over_sources(), spec.source_scope(), routings
        )
        ownership = default_ownership(catalog)
        certificate = build_sharding_certificate(
            spec,
            routings,
            report,
            shape_footprints(spec, routings),
            decide_source_commutativity(catalog, ownership),
            ownership,
        )
        return catalog, certificate

    def test_fresh_certificate_validates(self):
        catalog, certificate = self.build()
        assert check_sharding_certificate(catalog, certificate) == []

    def test_digest_is_stable_and_tamper_sensitive(self):
        _, certificate = self.build()
        digest = sharding_certificate_digest(certificate)
        assert digest == sharding_certificate_digest(dict(certificate))
        tampered = dict(certificate)
        tampered["shards"] = 3
        assert sharding_certificate_digest(tampered) != digest

    def test_tampered_assembly_mode_is_caught(self):
        catalog, certificate = self.build()
        certificate["assembly"]["Sold"] = ASSEMBLE_INTERSECT
        problems = check_sharding_certificate(catalog, certificate)
        assert any("re-derived" in problem for problem in problems)

    def test_tampered_warehouse_mapping_is_caught(self):
        catalog, certificate = self.build()
        # C_Emp is recorded intersect-assembled; rewriting its definition
        # to the bare routed relation re-derives union.
        certificate["warehouse"]["C_Emp"] = "Sale"
        assert check_sharding_certificate(catalog, certificate) != []

    def test_commute_claim_with_shared_relation_is_caught(self):
        catalog, certificate = self.build()
        certificate["commutativity"]["pairs"] = [
            {"pair": ["a", "b"], "shared": ["Sale"], "verdict": "commute"}
        ]
        problems = check_sharding_certificate(catalog, certificate)
        assert any("claims commutativity" in problem for problem in problems)

    def test_plan_cache_key_matches_compiler_digest(self):
        catalog, certificate = self.build()
        from repro.compiler.certificate import certify

        spec = specify(catalog, [View("Sold", parse("Sale join Emp"))])
        assert certificate["plan_cache_key"] == certify(spec).digest


def make_target(catalog, views, sharding):
    return LintTarget("spec.json", catalog, views, {}, sharding=sharding)


class TestProveShardingTarget:
    def test_no_sharding_section_is_unsharded(self):
        catalog = sale_emp_catalog()
        result = prove_sharding_target(
            make_target(catalog, [View("Sold", parse("Sale join Emp"))], None)
        )
        assert result.verdict == UNSHARDED
        assert result.ok

    def test_proved_layout_carries_certificate(self):
        catalog = sale_emp_catalog()
        result = prove_sharding_target(
            make_target(
                catalog,
                [View("Sold", parse("Sale join Emp"))],
                ShardingOptions(
                    routings=(RoutingSpec("Sale", "item", shards=2),)
                ),
            )
        )
        assert result.verdict == PROVED
        assert result.certificate is not None
        assert "digest" in result.document()

    def test_invalid_routing_is_unknown_with_error(self):
        catalog = sale_emp_catalog()
        result = prove_sharding_target(
            make_target(
                catalog,
                [View("Sold", parse("Sale join Emp"))],
                ShardingOptions(
                    routings=(RoutingSpec("Nope", "item", shards=2),)
                ),
            )
        )
        assert result.verdict == UNKNOWN
        assert "not in catalog" in result.error

    def test_unknown_owned_relation_is_unknown_with_error(self):
        catalog = sale_emp_catalog()
        result = prove_sharding_target(
            make_target(
                catalog,
                [View("Sold", parse("Sale join Emp"))],
                ShardingOptions(
                    routings=(RoutingSpec("Sale", "item", shards=2),),
                    sources={"feed": ("Ghost",)},
                ),
            )
        )
        assert result.verdict == UNKNOWN
        assert "Ghost" in result.error

    def test_shared_sources_refuted_with_interleaving_witness(self):
        catalog = sale_emp_catalog()
        result = prove_sharding_target(
            make_target(
                catalog,
                [View("Sold", parse("Sale join Emp"))],
                ShardingOptions(
                    routings=(RoutingSpec("Sale", "item", shards=2),),
                    expect="refuted",
                    sources={"a": ("Sale",), "b": ("Sale",)},
                ),
            )
        )
        assert result.verdict == REFUTED
        assert result.ok
        assert result.witness["kind"] == "interleaving"

    def test_mispartitioned_layout_refuted_with_sharding_witness(self):
        catalog = two_fact_catalog()
        result = prove_sharding_target(
            make_target(
                catalog,
                [View("Fulfilled", parse("Orders join Shipments"))],
                ShardingOptions(
                    routings=(
                        RoutingSpec("Orders", "okey", boundaries=(4,)),
                        RoutingSpec("Shipments", "okey", shards=2),
                    ),
                    expect="refuted",
                ),
            )
        )
        assert result.verdict == REFUTED
        assert result.ok
        assert result.witness["kind"] == "sharding"
        assert "confirmed by replay" in result.detail

    def test_inconsistent_shard_counts_are_unknown(self):
        catalog = two_fact_catalog()
        result = prove_sharding_target(
            make_target(
                catalog,
                [View("Fulfilled", parse("Orders join Shipments"))],
                ShardingOptions(
                    routings=(
                        RoutingSpec("Orders", "okey", shards=2),
                        RoutingSpec("Shipments", "okey", shards=3),
                    ),
                ),
            )
        )
        assert result.verdict == UNKNOWN
        assert "inconsistent shard counts" in result.error


class TestExitCodes:
    def r(self, verdict, expect="proved", error=None):
        return ShardingProofResult(
            "spec.json", verdict, "d", expect=expect, error=error
        )

    def test_all_expectations_met(self):
        results = [
            self.r(PROVED),
            self.r(REFUTED, expect="refuted"),
            self.r(UNSHARDED),
        ]
        assert sharding_exit_code(results) == 0
        assert sharding_exit_code(results, strict=True) == 0

    def test_mismatch_fails(self):
        assert sharding_exit_code([self.r(REFUTED)]) == 1
        assert sharding_exit_code([self.r(PROVED, expect="refuted")]) == 1

    def test_unknown_passes_only_when_lenient(self):
        assert sharding_exit_code([self.r(UNKNOWN)]) == 0
        assert sharding_exit_code([self.r(UNKNOWN)], strict=True) == 1
        assert sharding_exit_code([self.r(UNKNOWN, expect="refuted")]) == 1

    def test_load_error_is_exit_2(self):
        assert sharding_exit_code([self.r(UNKNOWN, error="boom")]) == 2
