"""Unit tests for :mod:`repro.analysis.dataflow` (read sets + sanitizer)."""

from __future__ import annotations

import pytest

from repro import Catalog, Database, View, Warehouse, WarehouseError, parse, specify
from repro.analysis.dataflow import (
    DataflowReport,
    UpdateShape,
    check_refresh_reads,
    sanitizer_enabled,
    spec_read_sets,
    static_refresh_reads,
    views_only_read_sets,
)
from repro.obs.trace import Span


def figure1_catalog():
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    return catalog


def figure1_views():
    return [View("Sold", parse("Sale join Emp"))]


class TestSpecReadSets:
    def test_complement_spec_is_update_independent(self):
        spec = specify(figure1_catalog(), figure1_views())
        report = spec_read_sets(spec)
        assert report.update_independent
        assert report.source_relations == ("Emp", "Sale")
        for shape, reads in report.read_sets:
            assert reads == (), shape

    def test_every_shape_present(self):
        spec = specify(figure1_catalog(), figure1_views())
        report = spec_read_sets(spec)
        labels = {shape.label() for shape, _ in report.read_sets}
        assert labels == {
            "Sale:insert",
            "Sale:delete",
            "Emp:insert",
            "Emp:delete",
        }

    def test_reads_for_unknown_shape_raises(self):
        spec = specify(figure1_catalog(), figure1_views())
        report = spec_read_sets(spec)
        assert report.reads_for("Sale", "insert") == ()
        with pytest.raises(WarehouseError):
            report.reads_for("Nope", "insert")

    def test_to_dict_shape(self):
        spec = specify(figure1_catalog(), figure1_views())
        data = spec_read_sets(spec).to_dict()
        assert data["update_independent"] is True
        assert data["read_sets"]["Sale:insert"] == []

    def test_describe_mentions_verdict(self):
        spec = specify(figure1_catalog(), figure1_views())
        text = spec_read_sets(spec).describe()
        assert "update independent: True" in text
        assert "Sale:insert: independent" in text


class TestViewsOnlyReadSets:
    def test_select_only_views_are_independent(self):
        catalog = Catalog()
        catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
        report = views_only_read_sets(
            catalog, [View("Senior", parse("sigma[age >= 40](Emp)"))]
        )
        assert report.update_independent

    def test_join_view_must_read_the_other_operand(self):
        report = views_only_read_sets(figure1_catalog(), figure1_views())
        assert not report.update_independent
        # Inserting into Sale forces a join against the full Emp relation.
        assert "Emp" in report.reads_for("Sale", "insert")

    def test_replica_view_is_independent(self):
        catalog = Catalog()
        catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
        report = views_only_read_sets(catalog, [View("Staff", parse("Emp"))])
        assert report.update_independent


class TestUpdateShape:
    def test_label(self):
        assert UpdateShape("Sale", "insert").label() == "Sale:insert"


class TestStaticRefreshReads:
    def test_empty_for_complement_spec(self):
        spec = specify(figure1_catalog(), figure1_views())
        assert static_refresh_reads(spec, ["Sale"]) == frozenset()
        assert static_refresh_reads(spec, ["Sale", "Emp"]) == frozenset()


class TestCheckRefreshReads:
    def _root_with_read(self, relation):
        root = Span("refresh")
        child = Span("read", attributes={"relation": relation})
        root.children.append(child)
        return root

    def test_clean_trace_passes(self):
        spec = specify(figure1_catalog(), figure1_views())
        check_refresh_reads(spec, ["Sale"], self._root_with_read("Sold"))

    def test_source_read_outside_static_set_raises(self):
        spec = specify(figure1_catalog(), figure1_views())
        with pytest.raises(WarehouseError) as excinfo:
            check_refresh_reads(spec, ["Sale"], self._root_with_read("Emp"))
        assert "Emp" in str(excinfo.value)
        assert "sanitizer" in str(excinfo.value)


class TestSanitizerRuntime:
    def _warehouse(self):
        catalog = figure1_catalog()
        sources = Database(catalog)
        sources.load("Sale", [("TV", "Mary"), ("PC", "John")])
        sources.load("Emp", [("Mary", 23), ("John", 25)])
        warehouse = Warehouse.specify(catalog, figure1_views())
        warehouse.initialize(sources)
        return sources, warehouse

    def test_sanitizer_enabled_reads_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK_INVARIANTS", raising=False)
        assert not sanitizer_enabled()
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "0")
        assert not sanitizer_enabled()
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        assert sanitizer_enabled()

    def test_apply_clean_under_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        sources, warehouse = self._warehouse()
        update = sources.insert("Sale", [("Computer", "Paula")])
        warehouse.apply(update)
        assert ("Computer", "Paula", 32) not in warehouse.relation("Sold").rows
        assert sorted(warehouse.reconstruct("Sale").rows) == sorted(
            sources["Sale"].rows
        )

    def test_apply_clean_with_tracing_and_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        sources, warehouse = self._warehouse()
        warehouse.enable_tracing()
        update = sources.insert("Sale", [("Computer", "Paula")])
        warehouse.apply(update)
        # The throwaway sanitizer collector must not leak into the tracer.
        assert len(warehouse.tracer.collectors) == 1
        assert "refresh" in warehouse.explain(name="refresh")
