"""Unit tests for :mod:`repro.analysis.typecheck` (E01xx codes)."""

from __future__ import annotations

from repro import parse
from repro.analysis import Severity, typecheck_aggregate, typecheck_expression

SCOPE = {
    "Sale": ("item", "clerk"),
    "Emp": ("clerk", "age"),
}


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestCleanExpressions:
    def test_relation(self):
        attrs, diags = typecheck_expression(parse("Sale"), SCOPE)
        assert attrs == ("item", "clerk")
        assert diags == []

    def test_join_merges_schemas(self):
        attrs, diags = typecheck_expression(parse("Sale join Emp"), SCOPE)
        assert attrs == ("item", "clerk", "age")
        assert diags == []

    def test_projection_and_selection(self):
        attrs, diags = typecheck_expression(
            parse("pi[clerk](sigma[age > 21](Sale join Emp))"), SCOPE
        )
        assert attrs == ("clerk",)
        assert diags == []

    def test_rename(self):
        attrs, diags = typecheck_expression(
            parse("rho[clerk -> person](Emp)"), SCOPE
        )
        assert attrs == ("person", "age")
        assert diags == []


class TestErrors:
    def test_e0101_unknown_relation(self):
        attrs, diags = typecheck_expression(parse("Nope"), SCOPE)
        assert attrs is None
        assert codes(diags) == ["E0101"]
        assert "Nope" in diags[0].message

    def test_e0101_does_not_cascade(self):
        # The unknown relation poisons the join, but no follow-on E0102.
        attrs, diags = typecheck_expression(
            parse("pi[item](Nope join Sale)"), SCOPE
        )
        assert codes(diags) == ["E0101"]
        assert attrs == ("item",)  # projection keeps its declared schema

    def test_e0102_bad_projection(self):
        attrs, diags = typecheck_expression(parse("pi[item, age](Sale)"), SCOPE)
        assert codes(diags) == ["E0102"]
        assert attrs == ("item", "age")
        assert "age" in diags[0].message

    def test_e0103_condition_unknown_attribute(self):
        _, diags = typecheck_expression(parse("sigma[age > 21](Sale)"), SCOPE)
        assert codes(diags) == ["E0103"]

    def test_e0104_union_mismatch(self):
        _, diags = typecheck_expression(parse("Sale union Emp"), SCOPE)
        assert codes(diags) == ["E0104"]

    def test_e0105_difference_mismatch(self):
        _, diags = typecheck_expression(parse("Sale minus Emp"), SCOPE)
        assert codes(diags) == ["E0105"]

    def test_e0106_rename_unknown_attribute(self):
        _, diags = typecheck_expression(parse("rho[wage -> pay](Emp)"), SCOPE)
        assert codes(diags) == ["E0106"]

    def test_e0107_rename_collision(self):
        attrs, diags = typecheck_expression(parse("rho[age -> clerk](Emp)"), SCOPE)
        assert codes(diags) == ["E0107"]
        assert attrs is None

    def test_e0108_self_comparison(self):
        _, diags = typecheck_expression(parse("sigma[age = age](Emp)"), SCOPE)
        assert codes(diags) == ["E0108"]
        assert diags[0].severity is Severity.WARNING
        assert "constant true" in diags[0].message

    def test_e0108_constant_false(self):
        _, diags = typecheck_expression(parse("sigma[age < age](Emp)"), SCOPE)
        assert codes(diags) == ["E0108"]
        assert "constant false" in diags[0].message

    def test_multiple_defects_all_reported(self):
        _, diags = typecheck_expression(
            parse("pi[item, age](Sale) union pi[wage](Emp)"), SCOPE
        )
        assert sorted(codes(diags)) == ["E0102", "E0102", "E0104"]

    def test_span_has_path_into_tree(self):
        _, diags = typecheck_expression(parse("Sale join Nope"), SCOPE)
        assert diags[0].span is not None
        assert diags[0].span.path == "root.right"


class TestAggregates:
    def test_clean(self):
        assert typecheck_aggregate("A", ("clerk",), ("age",), ("clerk", "age")) == []

    def test_e0109_bad_group_by(self):
        diags = typecheck_aggregate("A", ("dept",), (), ("clerk", "age"))
        assert codes(diags) == ["E0109"]

    def test_e0110_bad_measure(self):
        diags = typecheck_aggregate("A", ("clerk",), ("pay", None), ("clerk", "age"))
        assert codes(diags) == ["E0110"]
