"""Unit tests for ``python -m repro prove-sharding``."""

from __future__ import annotations

import json
from pathlib import Path

from repro.__main__ import main

PROVED_SPEC = {
    "relations": [
        {"name": "Sale", "attributes": ["item", "clerk"]},
        {"name": "Emp", "attributes": ["clerk", "age"], "key": ["clerk"]},
    ],
    "views": [{"name": "Sold", "definition": "Sale join Emp"}],
    "sharding": {
        "routings": [{"relation": "Sale", "attribute": "item", "shards": 2}],
        "expect": "proved",
    },
}

REFUTED_SPEC = {
    "relations": [
        {"name": "Orders", "attributes": ["okey", "item"], "key": ["okey"]},
        {"name": "Shipments", "attributes": ["okey", "carrier"], "key": ["okey"]},
    ],
    "views": [{"name": "Fulfilled", "definition": "Orders join Shipments"}],
    "sharding": {
        "routings": [
            {"relation": "Orders", "attribute": "okey", "boundaries": [4]},
            {"relation": "Shipments", "attribute": "okey", "shards": 2},
        ],
        "expect": "refuted",
    },
}

UNSHARDED_SPEC = {
    "relations": [{"name": "Sale", "attributes": ["item", "clerk"]}],
    "views": [{"name": "V", "definition": "Sale"}],
}


def write(tmp_path, data, name="spec.json"):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return str(path)


class TestExitCodes:
    def test_proved_as_expected_exits_zero(self, tmp_path, capsys):
        assert main(["prove-sharding", write(tmp_path, PROVED_SPEC)]) == 0
        out = capsys.readouterr().out
        assert "PROVED" in out
        assert "OK" in out

    def test_refuted_as_expected_exits_zero(self, tmp_path, capsys):
        assert main(["prove-sharding", write(tmp_path, REFUTED_SPEC)]) == 0
        out = capsys.readouterr().out
        assert "REFUTED" in out

    def test_expectation_mismatch_exits_one(self, tmp_path, capsys):
        spec = json.loads(json.dumps(REFUTED_SPEC))
        spec["sharding"]["expect"] = "proved"
        assert main(["prove-sharding", write(tmp_path, spec)]) == 1
        assert "unexpected" in capsys.readouterr().out

    def test_unsharded_spec_passes(self, tmp_path, capsys):
        assert main(["prove-sharding", write(tmp_path, UNSHARDED_SPEC)]) == 0
        assert "UNSHARDED" in capsys.readouterr().out

    def test_load_error_exits_two(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["prove-sharding", str(path)]) == 2

    def test_strict_passes_when_everything_is_decided(self, tmp_path, capsys):
        # Strict mode turns UNKNOWN into failure; on fully-decided specs it
        # must stay green (the CI invocation). The UNKNOWN-fails semantics
        # are unit-tested against sharding_exit_code directly.
        proved = write(tmp_path, PROVED_SPEC, "proved.json")
        refuted = write(tmp_path, REFUTED_SPEC, "refuted.json")
        assert main(["prove-sharding", "--strict", proved, refuted]) == 0


class TestJsonFormat:
    def test_json_document_shape(self, tmp_path, capsys):
        path = write(tmp_path, PROVED_SPEC)
        assert main(["prove-sharding", path, "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        assert document["summary"]["proved"] == 1
        (result,) = document["results"]
        assert result["verdict"] == "PROVED"
        assert "digest" in result
        assert result["certificate"]["shards"] == 2
        assert document["lint"] == []

    def test_json_refuted_carries_witness(self, tmp_path, capsys):
        path = write(tmp_path, REFUTED_SPEC)
        assert main(["prove-sharding", path, "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        (result,) = document["results"]
        assert result["verdict"] == "REFUTED"
        assert result["witness"]["kind"] == "sharding"


class TestCertificatesFlag:
    def test_writes_one_document_per_file(self, tmp_path, capsys):
        out_dir = tmp_path / "certs"
        proved = write(tmp_path, PROVED_SPEC, "proved.json")
        refuted = write(tmp_path, REFUTED_SPEC, "refuted.json")
        assert (
            main(
                [
                    "prove-sharding",
                    proved,
                    refuted,
                    "--certificates",
                    str(out_dir),
                ]
            )
            == 0
        )
        proved_doc = json.loads((out_dir / "proved.sharding.json").read_text())
        refuted_doc = json.loads((out_dir / "refuted.sharding.json").read_text())
        assert proved_doc["verdict"] == "PROVED"
        assert refuted_doc["verdict"] == "REFUTED"


class TestLintIntegration:
    def test_lint_rides_along_and_reports_clean(self, tmp_path, capsys):
        assert main(["prove-sharding", write(tmp_path, PROVED_SPEC)]) == 0
        assert "W01xx" in capsys.readouterr().out

    def test_no_lint_suppresses_it(self, tmp_path, capsys):
        assert (
            main(["prove-sharding", write(tmp_path, PROVED_SPEC), "--no-lint"])
            == 0
        )
        assert "W01xx" not in capsys.readouterr().out
