"""Unit tests for the ``W02xx`` family (:mod:`repro.analysis.query_lint`)."""

from __future__ import annotations

import json

from repro.analysis.diagnostics import filter_ignored
from repro.analysis.query_lint import lint_queries
from repro.analysis.report import lint_file
from repro.analysis.specfile import load_target

INVERTIBLE_SPEC = {
    "relations": [
        {"name": "Sale", "attributes": ["item", "clerk"]},
        {"name": "Emp", "attributes": ["clerk", "age"], "key": ["clerk"]},
    ],
    "views": [{"name": "Sold", "definition": "Sale join Emp"}],
}

LOSSY_SPEC = {
    "relations": [{"name": "Sale", "attributes": ["item", "clerk"]}],
    "views": [{"name": "Clerks", "definition": "pi[clerk](Sale)"}],
    "prover": {"mode": "views-only", "expect": "refuted"},
    "lint": {"ignore": {"W0031": "deliberately lossy test spec"}},
}


def load(tmp_path, data, name="spec.json"):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return load_target(str(path))


def with_queries(base, items, **options):
    spec = json.loads(json.dumps(base))
    spec["queries"] = dict({"items": items}, **options)
    return spec


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestCodes:
    def test_clean_invertible_target(self, tmp_path):
        target = load(
            tmp_path, with_queries(INVERTIBLE_SPEC, [{"query": "pi[age](Emp)"}])
        )
        assert lint_queries(target) == []

    def test_w0201_unparseable_query(self, tmp_path):
        target = load(
            tmp_path, with_queries(INVERTIBLE_SPEC, [{"query": "pi[(((", "name": "bad"}])
        )
        (diag,) = lint_queries(target)
        assert diag.code == "W0201"
        assert "cannot be analyzed" in diag.message

    def test_w0201_undeclared_relation(self, tmp_path):
        target = load(
            tmp_path, with_queries(INVERTIBLE_SPEC, [{"query": "Sale join Ghost"}])
        )
        (diag,) = lint_queries(target)
        assert diag.code == "W0201"
        assert "Ghost" in diag.message

    def test_w0202_lossy_source_read(self, tmp_path):
        target = load(
            tmp_path, with_queries(LOSSY_SPEC, [{"query": "Sale", "expect": "refuted"}])
        )
        assert "W0202" in codes(lint_queries(target))

    def test_w0203_condition_on_dropped_attribute(self, tmp_path):
        target = load(
            tmp_path,
            with_queries(
                LOSSY_SPEC,
                [{"query": "pi[clerk](sigma[item = 'PC'](Sale))", "expect": "refuted"}],
            ),
        )
        found = codes(lint_queries(target))
        assert "W0203" in found
        assert "W0202" in found  # the dropped attribute makes it lossy too

    def test_w0204_over_budget(self, tmp_path):
        target = load(
            tmp_path,
            with_queries(
                INVERTIBLE_SPEC,
                [{"query": "pi[age](Sale join Emp)"}],
                budget=10,
                rows={"Sale": 5000, "Emp": 200},
            ),
        )
        (diag,) = lint_queries(target)
        assert diag.code == "W0204"
        assert "budget" in diag.message

    def test_within_budget_is_silent(self, tmp_path):
        target = load(
            tmp_path,
            with_queries(
                INVERTIBLE_SPEC,
                [{"query": "pi[age](Emp)"}],
                budget=10_000_000,
            ),
        )
        assert lint_queries(target) == []

    def test_default_identity_queries_when_no_section(self, tmp_path):
        # A lossy spec with no "queries" section still gets its identity
        # queries linted — Sale is underdetermined, so W0202 fires.
        target = load(tmp_path, LOSSY_SPEC)
        assert "W0202" in codes(lint_queries(target))


class TestGating:
    def test_suppressable_via_lint_ignore(self, tmp_path):
        target = load(
            tmp_path, with_queries(LOSSY_SPEC, [{"query": "Sale", "expect": "refuted"}])
        )
        diagnostics = lint_queries(target)
        assert codes(diagnostics) == ["W0202"]
        assert filter_ignored(diagnostics, {"W0202": "known lossy"}) == []

    def test_broken_view_skips_query_lint(self, tmp_path):
        # A view that fails the typechecker has no translation to lint;
        # lint_queries stays silent and lint_file reports E01xx only.
        spec = with_queries(
            {
                "relations": [{"name": "Sale", "attributes": ["item", "clerk"]}],
                "views": [{"name": "V", "definition": "pi[ghost](Sale)"}],
            },
            [{"query": "Sale"}],
        )
        path = tmp_path / "broken_view.json"
        path.write_text(json.dumps(spec))
        assert lint_queries(load_target(str(path))) == []
        report = lint_file(str(path), deep=True)
        found = codes(report.diagnostics)
        assert any(code.startswith("E01") for code in found)
        assert not any(code.startswith("W02") for code in found)

    def test_lint_file_deep_includes_w02xx_when_clean(self, tmp_path):
        spec = with_queries(LOSSY_SPEC, [{"query": "Sale", "expect": "refuted"}])
        path = tmp_path / "lossy.json"
        path.write_text(json.dumps(spec))
        deep = lint_file(str(path), deep=True)
        shallow = lint_file(str(path), deep=False)
        assert "W0202" in codes(deep.diagnostics)
        assert "W0202" not in codes(shallow.diagnostics)
