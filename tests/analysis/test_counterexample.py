"""Unit tests for :mod:`repro.analysis.counterexample` (Prop. 2.1 search)."""

from __future__ import annotations

from repro import Catalog, parse
from repro.analysis.counterexample import (
    Witness,
    attribute_domains,
    search_counterexample,
    shrink,
    verify_witness,
)
from repro.storage.relation import Relation


def lossy_catalog():
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    return catalog


def lossy_definitions():
    return {"Clerks": parse("pi[clerk](Sale)")}


class TestAttributeDomains:
    def test_mentioned_constants_are_included(self):
        catalog = Catalog()
        catalog.relation("Emp", ("clerk", "age"))
        domains = attribute_domains(
            catalog, {"V": parse("sigma[age >= 40](Emp)")}, size=2
        )
        assert 40 in domains["age"]
        assert len(domains["age"]) >= 2
        assert len(domains["clerk"]) == 2

    def test_padding_avoids_duplicates(self):
        catalog = Catalog()
        catalog.relation("A", ("x",))
        domains = attribute_domains(
            catalog, {"V": parse("sigma[x = 0](A)")}, size=3
        )
        assert sorted(domains["x"], key=repr) == [0, 1, 2]


class TestSearch:
    def test_lossy_projection_refuted_with_one_row(self):
        outcome = search_counterexample(lossy_catalog(), lossy_definitions())
        assert outcome.witness is not None
        assert outcome.exhausted
        assert outcome.witness.max_rows_per_relation() == 1
        assert outcome.witness.differing_relations() == ("Sale",)
        assert verify_witness(
            lossy_catalog(), lossy_definitions(), outcome.witness
        ) == []

    def test_identity_view_finds_nothing(self):
        catalog = Catalog()
        catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
        outcome = search_counterexample(catalog, {"Staff": parse("Emp")})
        assert outcome.witness is None
        assert outcome.exhausted

    def test_budget_marks_search_partial(self):
        outcome = search_counterexample(
            lossy_catalog(), lossy_definitions(), max_states=2
        )
        assert outcome.states_examined == 3
        assert not outcome.exhausted

    def test_keys_constrain_the_state_space(self):
        # With clerk as key, pi[clerk] is injective on <=1-row states.
        catalog = Catalog()
        catalog.relation("Emp", ("clerk",), key=("clerk",))
        outcome = search_counterexample(catalog, {"V": parse("pi[clerk](Emp)")})
        assert outcome.witness is None


class TestVerifyWitness:
    def test_identical_states_rejected(self):
        state = {"Sale": Relation(("item", "clerk"), [(0, 0)])}
        problems = verify_witness(
            lossy_catalog(), lossy_definitions(), Witness(state, dict(state))
        )
        assert any("identical" in p for p in problems)

    def test_differing_images_rejected(self):
        left = {"Sale": Relation(("item", "clerk"), [(0, 0)])}
        right = {"Sale": Relation(("item", "clerk"), [(0, 1)])}
        problems = verify_witness(
            lossy_catalog(), lossy_definitions(), Witness(left, right)
        )
        assert any("images differ" in p for p in problems)

    def test_constraint_violation_rejected(self):
        catalog = Catalog()
        catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
        left = {"Emp": Relation(("clerk", "age"), [(0, 0), (0, 1)])}
        right = {"Emp": Relation(("clerk", "age"), [(0, 0)])}
        problems = verify_witness(
            catalog, {"V": parse("pi[age](Emp)")}, Witness(left, right)
        )
        assert any("constraints" in p for p in problems)


class TestShrink:
    def test_shrink_reaches_local_minimum(self):
        left = {
            "Sale": Relation(
                ("item", "clerk"), [(0, 0), (1, 0), (0, 1), (1, 1)]
            )
        }
        right = {
            "Sale": Relation(("item", "clerk"), [(1, 0), (0, 1), (1, 1)])
        }
        catalog, definitions = lossy_catalog(), lossy_definitions()
        assert verify_witness(catalog, definitions, Witness(left, right)) == []
        small = shrink(Witness(left, right), catalog, definitions)
        assert verify_witness(catalog, definitions, small) == []
        # Strictly smaller, and locally minimal: removing any remaining
        # row from both sides breaks the witness property.
        assert small.max_rows_per_relation() < 4
        from repro.analysis.counterexample import _is_witness, _without

        for row in small.left["Sale"].rows | small.right["Sale"].rows:
            cand_left = {"Sale": _without(small.left["Sale"], row)}
            cand_right = {"Sale": _without(small.right["Sale"], row)}
            assert not _is_witness(catalog, definitions, cand_left, cand_right)

    def test_witness_to_dict_is_deterministic(self):
        outcome = search_counterexample(lossy_catalog(), lossy_definitions())
        first = outcome.witness.to_dict()
        second = search_counterexample(
            lossy_catalog(), lossy_definitions()
        ).witness.to_dict()
        assert first == second
        assert first["differs_in"] == ["Sale"]
        assert "describe" not in first

    def test_describe_marks_differing_relation(self):
        outcome = search_counterexample(lossy_catalog(), lossy_definitions())
        assert "<- differs" in outcome.witness.describe()
