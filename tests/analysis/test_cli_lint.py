"""Unit tests for ``python -m repro lint``."""

from __future__ import annotations

import json
from pathlib import Path

from repro.__main__ import main

CLEAN_SPEC = {
    "relations": [
        {"name": "Sale", "attributes": ["item", "clerk"]},
        {"name": "Emp", "attributes": ["clerk", "age"], "key": ["clerk"]},
    ],
    "inclusions": [
        {
            "lhs": "Sale",
            "lhs_attributes": ["clerk"],
            "rhs": "Emp",
            "rhs_attributes": ["clerk"],
        }
    ],
    "views": [{"name": "Sold", "definition": "Sale join Emp"}],
}


def write(tmp_path, data, name="spec.json"):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return str(path)


def dirty_spec():
    spec = json.loads(json.dumps(CLEAN_SPEC))
    spec["relations"].append({"name": "Archive", "attributes": ["item", "year"]})
    return spec


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = write(tmp_path, CLEAN_SPEC)
        assert main(["lint", path]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert out.strip().endswith("0 info(s)")

    def test_warning_exits_one(self, tmp_path, capsys):
        assert main(["lint", write(tmp_path, dirty_spec())]) == 1
        out = capsys.readouterr().out
        assert "W0033" in out
        assert "FAIL" in out

    def test_unreadable_file_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "missing.json")]) == 2
        assert "failed to lint" in capsys.readouterr().out

    def test_invalid_json_exits_two(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["lint", str(path)]) == 2

    def test_info_gates_only_with_strict(self, tmp_path, capsys):
        spec = json.loads(json.dumps(CLEAN_SPEC))
        # A tautological conjunct is INFO-level (W0022).
        spec["views"][0]["definition"] = "sigma[1 = 1 and age > 0](Sale join Emp)"
        path = write(tmp_path, spec)
        assert main(["lint", path]) == 0
        capsys.readouterr()
        assert main(["lint", "--strict", path]) == 1
        assert "W0022" in capsys.readouterr().out


class TestFlags:
    def test_ignore_flag_suppresses(self, tmp_path, capsys):
        path = write(tmp_path, dirty_spec())
        assert main(["lint", "--ignore", "W0033", path]) == 0

    def test_json_format(self, tmp_path, capsys):
        path = write(tmp_path, dirty_spec())
        assert main(["lint", "--format", "json", path]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == 1
        assert document["ok"] is False
        assert document["summary"]["warnings"] == 1
        [entry] = document["files"]
        [diagnostic] = entry["diagnostics"]
        assert diagnostic["code"] == "W0033"
        assert diagnostic["severity"] == "warning"
        assert diagnostic["paper"]

    def test_method_flag(self, tmp_path, capsys):
        path = write(tmp_path, CLEAN_SPEC)
        # prop22 keeps the provably-empty C_Sale: INFO finding, strict gate.
        assert main(["lint", "--method", "prop22", "--strict", path]) == 1
        assert "W0041" in capsys.readouterr().out

    def test_multiple_files(self, tmp_path, capsys):
        clean = write(tmp_path, CLEAN_SPEC, "clean.json")
        dirty = write(tmp_path, dirty_spec(), "dirty.json")
        assert main(["lint", clean, dirty]) == 1
        out = capsys.readouterr().out
        assert "clean.json: clean" in out
        assert "2 file(s)" in out


class TestJsonPaths:
    def test_json_paths_are_relative_to_cwd(self, tmp_path, capsys, monkeypatch):
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "spec.json").write_text(json.dumps(CLEAN_SPEC))
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "--format", "json", "sub/spec.json"]) == 0
        document = json.loads(capsys.readouterr().out)
        [entry] = document["files"]
        # Stable across runners: never the absolute path of this machine.
        assert entry["path"] == "sub/spec.json"

    def test_json_paths_stay_relative_for_absolute_input(
        self, tmp_path, capsys, monkeypatch
    ):
        path = write(tmp_path, CLEAN_SPEC)
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "--format", "json", path]) == 0
        document = json.loads(capsys.readouterr().out)
        [entry] = document["files"]
        assert entry["path"] == "spec.json"

    def test_paths_outside_cwd_fall_back_to_posix(
        self, tmp_path, capsys, monkeypatch
    ):
        path = write(tmp_path, CLEAN_SPEC)
        nested = tmp_path / "elsewhere"
        nested.mkdir()
        monkeypatch.chdir(nested)
        assert main(["lint", "--format", "json", path]) == 0
        document = json.loads(capsys.readouterr().out)
        [entry] = document["files"]
        assert Path(entry["path"]).name == "spec.json"


class TestSpecFileIgnores:
    def test_inline_ignore_block(self, tmp_path, capsys):
        spec = dirty_spec()
        spec["lint"] = {"ignore": {"W0033": "Archive intentionally cold"}}
        assert main(["lint", write(tmp_path, spec)]) == 0
        out = capsys.readouterr().out
        assert "ignored W0033: Archive intentionally cold" in out

    def test_unknown_ignore_code_rejected(self, tmp_path, capsys):
        spec = dirty_spec()
        spec["lint"] = {"ignore": {"W9999": "nope"}}
        assert main(["lint", write(tmp_path, spec)]) == 2
        assert "W9999" in capsys.readouterr().out

    def test_empty_justification_rejected(self, tmp_path, capsys):
        spec = dirty_spec()
        spec["lint"] = {"ignore": {"W0033": ""}}
        assert main(["lint", write(tmp_path, spec)]) == 2
