"""Unit tests for :mod:`repro.analysis.lint` (W00xx codes) and
:meth:`repro.core.warehouse.Warehouse.validate`."""

from __future__ import annotations

import pytest

from repro import (
    Catalog,
    Database,
    Severity,
    View,
    Warehouse,
    WarehouseError,
    parse,
    specify,
)
from repro.analysis import lint_spec, lint_views, psj_parts


def codes(diagnostics):
    return sorted(d.code for d in diagnostics)


def figure1_catalog(with_ind=True):
    catalog = Catalog()
    catalog.relation("Sale", ("item", "clerk"))
    catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
    if with_ind:
        catalog.inclusion("Sale", ("clerk",), "Emp")
    return catalog


class TestPsjParts:
    def test_single_psj_view(self):
        parts, diags = psj_parts(View("Sold", parse("Sale join Emp")))
        assert diags == []
        assert len(parts) == 1
        assert parts[0].relations == ("Sale", "Emp")

    def test_union_fact_table_yields_one_part_per_member(self):
        view = View("Fact", parse("sigma[loc = 1](A) union sigma[loc = 2](B)"))
        parts, diags = psj_parts(view)
        assert diags == []
        assert [p.relations for p in parts] == [("A",), ("B",)]

    def test_w0011_non_psj(self):
        parts, diags = psj_parts(View("Bad", parse("Sale minus Emp")))
        assert parts == []
        assert codes(diags) == ["W0011"]

    def test_w0012_self_join(self):
        parts, diags = psj_parts(View("Bad", parse("Sale join Sale")))
        assert parts == []
        assert codes(diags) == ["W0012"]


class TestLintViews:
    def test_figure1_clean(self):
        catalog = figure1_catalog()
        assert lint_views(catalog, [View("Sold", parse("Sale join Emp"))]) == []

    def test_w0013_cartesian_product(self):
        catalog = Catalog()
        catalog.relation("A", ("x",))
        catalog.relation("B", ("y",))
        diags = lint_views(catalog, [View("V", parse("A join B"))])
        assert "W0013" in codes(diags)

    def test_w0021_unsatisfiable_condition(self):
        catalog = Catalog()
        catalog.relation("A", ("x", "y"))
        diags = lint_views(catalog, [View("V", parse("sigma[x = 1 and x = 2](A)"))])
        assert "W0021" in codes(diags)
        w21 = next(d for d in diags if d.code == "W0021")
        assert w21.severity is Severity.WARNING

    def test_w0022_tautological_conjunct(self):
        catalog = Catalog()
        catalog.relation("A", ("x",))
        diags = lint_views(catalog, [View("V", parse("sigma[1 = 1 and x = 2](A)"))])
        assert "W0022" in codes(diags)

    def test_no_w0022_for_selection_free_view(self):
        catalog = figure1_catalog()
        diags = lint_views(catalog, [View("Sold", parse("Sale join Emp"))])
        assert "W0022" not in codes(diags)

    def test_w0031_projection_without_key(self):
        catalog = Catalog()
        catalog.relation("Sale", ("item", "clerk", "price"))
        diags = lint_views(catalog, [View("V", parse("pi[item, clerk](Sale)"))])
        assert codes(diags) == ["W0031"]
        assert "'Sale'" in diags[0].message
        assert "key" in diags[0].message

    def test_w0032_no_cover(self):
        catalog = Catalog()
        catalog.relation("Emp", ("clerk", "age", "dept"), key=("clerk",))
        diags = lint_views(catalog, [View("V", parse("pi[clerk, age](Emp)"))])
        assert codes(diags) == ["W0032"]
        assert "['dept']" in diags[0].message

    def test_w0032_resolved_by_covering_view(self):
        catalog = Catalog()
        catalog.relation("Emp", ("clerk", "age", "dept"), key=("clerk",))
        views = [
            View("V", parse("pi[clerk, age](Emp)")),
            View("Depts", parse("pi[clerk, dept](Emp)")),
        ]
        assert lint_views(catalog, views) == []

    def test_w0032_resolved_by_inclusion_dependency(self):
        # Sale[clerk] <= Emp[clerk] makes pi[clerk](Emp) an IND view, so
        # the key attribute stays covered even when every retaining view
        # projects Emp down to it.
        catalog = figure1_catalog(with_ind=True)
        views = [View("Sold", parse("pi[item, clerk](Sale join Emp)"))]
        diags = lint_views(catalog, views)
        assert "W0031" not in codes(diags)

    def test_w0033_unused_relation(self):
        catalog = figure1_catalog()
        catalog.relation("Archive", ("item", "year"))
        diags = lint_views(catalog, [View("Sold", parse("Sale join Emp"))])
        assert codes(diags) == ["W0033"]
        assert "'Archive'" in diags[0].message

    def test_w0051_duplicate_view_name(self):
        catalog = figure1_catalog()
        views = [
            View("Sold", parse("Sale join Emp")),
            View("Sold", parse("Sale")),
        ]
        diags = lint_views(catalog, views)
        assert "W0051" in codes(diags)

    def test_w0052_equivalent_views(self):
        catalog = figure1_catalog()
        views = [
            View("Sold", parse("Sale join Emp")),
            View("Sold2", parse("Emp join Sale")),
        ]
        diags = lint_views(catalog, views)
        assert "W0052" in codes(diags)

    def test_w0052_needs_deep(self):
        catalog = figure1_catalog()
        views = [
            View("Sold", parse("Sale join Emp")),
            View("Sold2", parse("Emp join Sale")),
        ]
        assert "W0052" not in codes(lint_views(catalog, views, deep=False))

    def test_w0053_view_shadows_relation(self):
        catalog = figure1_catalog()
        diags = lint_views(catalog, [View("Sale", parse("Sale"))])
        assert "W0053" in codes(diags)

    def test_ignore_filters_codes(self):
        catalog = figure1_catalog()
        catalog.relation("Archive", ("item", "year"))
        views = [View("Sold", parse("Sale join Emp"))]
        assert lint_views(catalog, views, ignore=("W0033",)) == []

    def test_typecheck_errors_surface(self):
        catalog = figure1_catalog()
        diags = lint_views(catalog, [View("V", parse("pi[wage](Emp)"))])
        assert "E0102" in codes(diags)

    def test_sorted_most_severe_first(self):
        catalog = figure1_catalog()
        catalog.relation("Archive", ("item", "year"))
        views = [
            View("Sold", parse("Sale join Emp")),
            View("V", parse("pi[wage](Emp)")),
        ]
        diags = lint_views(catalog, views)
        severities = [d.severity for d in diags]
        assert severities == sorted(severities, reverse=True)


class TestLintSpec:
    def test_thm22_figure1_clean(self):
        catalog = figure1_catalog()
        spec = specify(catalog, [View("Sold", parse("Sale join Emp"))])
        assert lint_spec(spec) == []

    def test_w0041_unpruned_empty_complement(self):
        catalog = figure1_catalog()
        spec = specify(
            catalog, [View("Sold", parse("Sale join Emp"))], method="prop22"
        )
        diags = lint_spec(spec)
        assert "W0041" in codes(diags)

    def test_w0042_no_minimality_certificate(self):
        catalog = Catalog()
        catalog.relation("Sale", ("item", "clerk", "price"))
        catalog.relation("Emp", ("clerk", "age"), key=("clerk",))
        views = [View("Sold", parse("pi[item, clerk, age](Sale join Emp)"))]
        spec = specify(catalog, views, method="trivial")
        diags = lint_spec(spec)
        assert "W0042" in codes(diags)

    def test_w004x_skipped_when_shallow(self):
        catalog = figure1_catalog()
        spec = specify(
            catalog, [View("Sold", parse("Sale join Emp"))], method="prop22"
        )
        assert "W0041" not in codes(lint_spec(spec, deep=False))


class TestWarehouseValidate:
    def sources(self, catalog):
        db = Database(catalog)
        db.load("Emp", [("Mary", 23), ("Paula", 32)])
        db.load("Sale", [("TV", "Mary")])
        return db

    def test_clean_spec_initializes(self):
        catalog = figure1_catalog()
        wh = Warehouse.specify(catalog, [View("Sold", parse("Sale join Emp"))])
        assert wh.validate() == []
        wh.initialize(self.sources(catalog))

    def test_validate_reports_warnings_without_raising(self):
        catalog = figure1_catalog()
        catalog.relation("Archive", ("item", "year"))
        wh = Warehouse.specify(catalog, [View("Sold", parse("Sale join Emp"))])
        diags = wh.validate()
        assert codes(diags) == ["W0033"]

    def test_validate_strict_raises_on_warnings(self):
        catalog = figure1_catalog()
        catalog.relation("Archive", ("item", "year"))
        wh = Warehouse.specify(catalog, [View("Sold", parse("Sale join Emp"))])
        with pytest.raises(WarehouseError) as excinfo:
            wh.validate(strict=True)
        assert "W0033" in str(excinfo.value)
