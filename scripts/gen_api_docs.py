#!/usr/bin/env python3
"""Regenerate docs/api.md from the public symbols' docstrings.

Run from the repository root:  python scripts/gen_api_docs.py
"""

import importlib
import inspect
import io
import pathlib

MODULES = [
    "repro.schema.schema", "repro.schema.constraints", "repro.schema.catalog",
    "repro.storage.relation", "repro.storage.database", "repro.storage.update",
    "repro.storage.persist", "repro.storage.engine", "repro.storage.columnar",
    "repro.storage.snapshot",
    "repro.algebra.conditions", "repro.algebra.expressions", "repro.algebra.evaluator",
    "repro.algebra.parser", "repro.algebra.simplify", "repro.algebra.optimize",
    "repro.algebra.rewriting", "repro.algebra.deltas", "repro.algebra.containment",
    "repro.algebra.visitors",
    "repro.views.psj", "repro.views.analysis",
    "repro.analysis.diagnostics", "repro.analysis.typecheck",
    "repro.analysis.satisfiability", "repro.analysis.lint",
    "repro.analysis.specfile", "repro.analysis.report",
    "repro.analysis.dataflow", "repro.analysis.counterexample",
    "repro.analysis.prover", "repro.analysis.digest",
    "repro.analysis.concurrency", "repro.analysis.concurrency_lint",
    "repro.analysis.races",
    "repro.analysis.query", "repro.analysis.query_lint",
    "repro.core.covers", "repro.core.complement", "repro.core.independence",
    "repro.core.translation", "repro.core.maintenance", "repro.core.warehouse",
    "repro.core.minimality", "repro.core.selfmaint", "repro.core.star",
    "repro.core.aggregates", "repro.core.auxviews", "repro.core.hybrid",
    "repro.core.sharding",
    "repro.obs.trace", "repro.obs.metrics", "repro.obs.explain", "repro.obs.report",
    "repro.integrator.source", "repro.integrator.channel", "repro.integrator.integrator",
    "repro.integrator.async_integrator",
    "repro.workloads.generator", "repro.workloads.queries", "repro.workloads.tpcd",
    "repro.compiler", "repro.compiler.certificate", "repro.compiler.fuse",
    "repro.compiler.runtime",
]


def main() -> None:
    out = io.StringIO()
    out.write("# API reference (generated)\n\n")
    out.write("One-line summaries of every public symbol, generated from the\n")
    out.write("docstrings (`python scripts/gen_api_docs.py` regenerates this file).\n")
    for modname in MODULES:
        mod = importlib.import_module(modname)
        out.write(f"\n## `{modname}`\n\n")
        first = (mod.__doc__ or "").strip().splitlines()[0]
        out.write(f"{first}\n\n")
        for name, obj in sorted(vars(mod).items()):
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != modname:
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            doc = (inspect.getdoc(obj) or "").strip().splitlines()
            summary = doc[0] if doc else ""
            kind = "class" if inspect.isclass(obj) else "def"
            out.write(f"- **`{name}`** ({kind}) — {summary}\n")
            if inspect.isclass(obj):
                for mname, meth in sorted(vars(obj).items()):
                    if mname.startswith("_"):
                        continue
                    if not (
                        inspect.isfunction(meth)
                        or isinstance(meth, (classmethod, staticmethod, property))
                    ):
                        continue
                    target = meth
                    if isinstance(meth, (classmethod, staticmethod)):
                        target = meth.__func__
                    if isinstance(meth, property):
                        target = meth.fget
                    mdoc = (inspect.getdoc(target) or "").strip().splitlines()
                    msummary = mdoc[0] if mdoc else ""
                    out.write(f"  - `{mname}` — {msummary}\n")
    pathlib.Path("docs/api.md").write_text(out.getvalue())
    print(f"wrote docs/api.md ({len(out.getvalue().splitlines())} lines)")


if __name__ == "__main__":
    main()
