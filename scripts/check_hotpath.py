#!/usr/bin/env python
"""AST lint for the engines' hot paths (evaluators, kernels, compiler).

Two rule sets, dispatched per file:

**Evaluator rules** (``src/repro/algebra/evaluator.py``,
``columnar_eval.py``, the compiler's hot modules
``repro/compiler/{certificate,fuse,runtime}.py``, and the
query-translation serving path ``repro/core/translation.py``). Each evaluator keeps
two entry points: ``_eval`` (the default, untraced path — called once
per operator per evaluation, often inside per-row loops higher up) and
``_eval_traced`` (taken only when a tracer is installed); the compiled
runtime mirrors the split as ``run`` vs ``_run_traced``. The untraced path must stay allocation-free
with respect to observability: no ``Span`` objects, no timing calls, no
unguarded tracer method calls. These rules enforce that invariant
structurally so a refactor cannot quietly put span construction back on
the hot path.

R1  ``*.span(...)`` calls may appear only inside functions on the
    allowlist (``_eval_traced``) — span construction is what makes the
    traced path cost something, and it must stay quarantined there.
R2  No references to ``perf_counter``, ``monotonic``, ``time`` or
    ``datetime``: the evaluator itself never reads clocks; timing lives
    in ``repro.obs`` behind the tracer.
R3  Any other ``*.tracer.method(...)`` call outside the allowlist must
    be lexically inside an ``if <obj>.tracer is not None`` guard, so the
    ``tracer=None`` default never pays an attribute lookup on a dead
    branch. (Guarded calls inside loops are fine — e.g. the per-operand
    annotate in ``_eval_difference``.)
R4  The name ``Span`` must not be referenced at all: the evaluator
    receives spans only through the tracer's context manager.
R5  No environment reads: ``environ``/``getenv`` (and the sanitizer
    variable names ``REPRO_CHECK_INVARIANTS`` / ``REPRO_CHECK_QUERIES``)
    must never appear — the sanitizer flags are read once per
    ``Warehouse`` construction, and the engine default once at
    ``repro.storage.engine`` import, never per-operator.

**Columnar kernel rules** (``src/repro/storage/columnar.py``). The
batch kernels exist to replace per-row Python interpretation with
C-level primitives (comprehensions, ``zip``, ``set``/``dict`` algebra);
a ``for`` statement over rows would silently give that back.

C1  No ``for``/``while`` *statements* in kernel code — comprehensions
    and generator expressions are the batch idiom and stay allowed.
    Facade methods that bridge to/from the tuple world
    (``from_relation``, ``patched``, ``_ensure_positions``) are
    allowlisted: they run once per table build/patch, not per operator.
C2  Tuple materialization (``Relation._raw``/``Relation(...)``
    construction, ``*.to_relation()`` calls) may appear only at the API
    boundary (``to_relation``, ``from_relation``) — kernels must stay
    code-space end to end; late materialization is the contract.

Exit status: 0 when clean, 1 with one violation per line otherwise.
Usage: ``python scripts/check_hotpath.py [FILE ...]``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List

SPAN_ALLOWLIST = frozenset({"_eval_traced", "_run_traced"})
TIMING_NAMES = frozenset({"perf_counter", "monotonic", "time", "datetime"})
ENVIRON_NAMES = frozenset({"environ", "getenv"})
SANITIZER_ENVS = frozenset({"REPRO_CHECK_INVARIANTS", "REPRO_CHECK_QUERIES"})

#: Columnar facade methods allowed to loop row-at-a-time (C1): they run
#: once per build/patch on delta-sized inputs, not inside operator trees.
LOOP_ALLOWLIST = frozenset({"from_relation", "patched", "_ensure_positions"})
#: Columnar methods allowed to touch tuple-world ``Relation`` objects (C2).
MATERIALIZE_ALLOWLIST = frozenset({"to_relation", "from_relation"})

_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_TARGETS = (
    _ROOT / "src" / "repro" / "algebra" / "evaluator.py",
    _ROOT / "src" / "repro" / "algebra" / "columnar_eval.py",
    _ROOT / "src" / "repro" / "storage" / "columnar.py",
    # The compiler's refresh path: certificate checks, plan fusion, and
    # the compiled closures all run under the same no-clock/no-env/
    # quarantined-span rules. (repro/compiler/__init__.py is exempt: it
    # is the build/metrics boundary and times compilation on purpose.)
    _ROOT / "src" / "repro" / "compiler" / "certificate.py",
    _ROOT / "src" / "repro" / "compiler" / "fuse.py",
    _ROOT / "src" / "repro" / "compiler" / "runtime.py",
    # The query-translation serving path: translate/cache/lookup runs per
    # answer() call and must never read clocks, spans, or the environment
    # — the REPRO_CHECK_QUERIES wiring lives in repro.core.warehouse.
    _ROOT / "src" / "repro" / "core" / "translation.py",
)


def _is_tracer_guard(test: ast.expr) -> bool:
    """True for ``<expr>.tracer is not None`` (or ``is None``, for else-guards)."""
    return (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Attribute)
        and test.left.attr == "tracer"
        and len(test.ops) == 1
        and isinstance(test.ops[0], (ast.Is, ast.IsNot))
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    )


def _is_tracer_call(node: ast.Call) -> bool:
    """True for ``<expr>.tracer.method(...)``."""
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Attribute)
        and func.value.attr == "tracer"
    )


class _HotPathChecker(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.violations: List[str] = []
        self._function = "<module>"
        self._guard_depth = 0

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        self.violations.append(f"{self.path}:{line}: {rule}: {message}")

    # -- scope tracking -------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        previous = self._function
        self._function = node.name
        self.generic_visit(node)
        self._function = previous

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_If(self, node: ast.If) -> None:
        self.visit(node.test)
        if _is_tracer_guard(node.test):
            self._guard_depth += 1
            for child in node.body:
                self.visit(child)
            for child in node.orelse:
                self.visit(child)
            self._guard_depth -= 1
        else:
            for child in node.body + node.orelse:
                self.visit(child)

    # -- rules ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "span":
            if self._function not in SPAN_ALLOWLIST:
                self._report(
                    node,
                    "R1",
                    f"span() call in '{self._function}' — spans may only be "
                    f"built in {sorted(SPAN_ALLOWLIST)}",
                )
        elif _is_tracer_call(node):
            if self._function not in SPAN_ALLOWLIST and not self._guard_depth:
                self._report(
                    node,
                    "R3",
                    f"unguarded tracer call in '{self._function}' — wrap in "
                    "'if <obj>.tracer is not None'",
                )
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if node.id in TIMING_NAMES:
            self._report(node, "R2", f"timing name '{node.id}' on the hot path")
        elif node.id == "Span":
            self._report(node, "R4", "'Span' referenced in the evaluator")
        elif node.id in ENVIRON_NAMES:
            self._report(
                node, "R5", f"environment read '{node.id}' on the hot path"
            )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in TIMING_NAMES:
            self._report(node, "R2", f"timing attribute '.{node.attr}' on the hot path")
        elif node.attr in ENVIRON_NAMES:
            self._report(
                node, "R5", f"environment read '.{node.attr}' on the hot path"
            )
        self.generic_visit(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        if node.value in SANITIZER_ENVS:
            self._report(
                node,
                "R5",
                f"'{node.value}' mentioned in the evaluator — the "
                "sanitizer flags are read once per Warehouse, never here",
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            if alias.name == "Span":
                self._report(node, "R4", "'Span' imported into the evaluator")
            if alias.name in TIMING_NAMES:
                self._report(node, "R2", f"timing import '{alias.name}'")

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name.split(".")[0] in TIMING_NAMES:
                self._report(node, "R2", f"timing import '{alias.name}'")


class _ColumnarKernelChecker(ast.NodeVisitor):
    """C1/C2 over the columnar kernel module."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.violations: List[str] = []
        self._function = "<module>"

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        self.violations.append(f"{self.path}:{line}: {rule}: {message}")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        previous = self._function
        self._function = node.name
        self.generic_visit(node)
        self._function = previous

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _check_loop(self, node: ast.AST) -> None:
        if self._function not in LOOP_ALLOWLIST:
            self._report(
                node,
                "C1",
                f"per-row loop statement in '{self._function}' — kernels must "
                f"use comprehensions/set algebra; loops are allowed only in "
                f"{sorted(LOOP_ALLOWLIST)}",
            )
        self.generic_visit(node)

    visit_For = _check_loop
    visit_While = _check_loop
    visit_AsyncFor = _check_loop

    def _check_materialization(self, node: ast.AST, what: str) -> None:
        if self._function not in MATERIALIZE_ALLOWLIST:
            self._report(
                node,
                "C2",
                f"{what} in '{self._function}' — tuple materialization is "
                f"allowed only in {sorted(MATERIALIZE_ALLOWLIST)}",
            )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "Relation":
            self._check_materialization(node, "Relation(...) construction")
        elif isinstance(func, ast.Attribute):
            if func.attr == "to_relation":
                self._check_materialization(node, "to_relation() call")
            elif func.attr == "_raw" and (
                isinstance(func.value, ast.Name) and func.value.id == "Relation"
            ):
                self._check_materialization(node, "Relation._raw(...) call")
        self.generic_visit(node)


def _checker_for(path: str):
    if Path(path).name == "columnar.py":
        return _ColumnarKernelChecker(path)
    return _HotPathChecker(path)


def check_file(path: str) -> List[str]:
    """Check one file; returns a list of ``path:line: rule: message`` strings."""
    source = Path(path).read_text()
    tree = ast.parse(source, filename=str(path))
    checker = _checker_for(str(path))
    checker.visit(tree)
    return checker.violations


def main(argv: List[str]) -> int:
    targets = argv or [str(target) for target in DEFAULT_TARGETS]
    violations: List[str] = []
    for target in targets:
        violations.extend(check_file(target))
    for violation in violations:
        print(violation)
    if violations:
        print(f"check_hotpath: {len(violations)} violation(s)")
        return 1
    print(f"check_hotpath: OK ({len(targets)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
