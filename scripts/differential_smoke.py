#!/usr/bin/env python
"""CI smoke runner for the differential oracle (~30 s, fixed seed).

Usage::

    PYTHONPATH=src python scripts/differential_smoke.py [--schemas N]
        [--updates N] [--seed N]

Exit status 0 iff the three maintenance tracks (cached fast path, uncached
evaluator, full recompute) agree on every step. See
``tests/differential/harness.py`` for the track definitions.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from tests.differential.harness import DifferentialConfig, run_differential


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--schemas", type=int, default=20)
    parser.add_argument("--updates", type=int, default=12)
    parser.add_argument("--seed", type=int, default=20260806)
    args = parser.parse_args(argv)

    config = DifferentialConfig(
        n_schemas=args.schemas, n_updates=args.updates, seed=args.seed
    )
    started = time.perf_counter()
    report = run_differential(config)
    elapsed = time.perf_counter() - started
    print(f"{report.summary()} in {elapsed:.1f}s")
    for disagreement in report.disagreements:
        print(f"  {disagreement}", file=sys.stderr)
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
