#!/usr/bin/env python
"""CI smoke runner for the differential oracle (~30 s, fixed seed).

Usage::

    PYTHONPATH=src python scripts/differential_smoke.py [--schemas N]
        [--updates N] [--seed N] [--trace-out FILE.jsonl]

Exit status 0 iff the three maintenance tracks (cached fast path, uncached
evaluator, full recompute) agree on every step. See
``tests/differential/harness.py`` for the track definitions.

``--trace-out`` enables tracing on the fast track and streams every
refresh's span tree to a JSONL file (summarize it with
``python -m repro obs report FILE``); CI uploads this file as a build
artifact so differential failures are diagnosable from the trace alone.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from tests.differential.harness import DifferentialConfig, run_differential


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--schemas", type=int, default=20)
    parser.add_argument("--updates", type=int, default=12)
    parser.add_argument("--seed", type=int, default=20260806)
    parser.add_argument(
        "--trace-out",
        default=None,
        help="write the fast track's refresh traces to this JSONL file",
    )
    args = parser.parse_args(argv)

    config = DifferentialConfig(
        n_schemas=args.schemas, n_updates=args.updates, seed=args.seed
    )
    sink = None
    if args.trace_out:
        from repro.obs import JsonlSink

        sink = JsonlSink(args.trace_out, mode="w")
    started = time.perf_counter()
    try:
        report = run_differential(config, trace_sink=sink)
    finally:
        if sink is not None:
            sink.close()
    elapsed = time.perf_counter() - started
    print(f"{report.summary()} in {elapsed:.1f}s")
    if sink is not None:
        print(f"fast-track traces written to {args.trace_out}")
    for disagreement in report.disagreements:
        print(f"  {disagreement}", file=sys.stderr)
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
