#!/usr/bin/env python3
"""Execute the fenced ``python`` code blocks in ``README.md`` and ``docs/*.md``.

Run from the repository root::

    PYTHONPATH=src python scripts/check_docs.py [FILES...]

Every fenced block tagged exactly ```` ```python ```` is executed; blocks
within one file share a namespace (so a tutorial can build on earlier
snippets), and each file starts fresh. Blocks whose info string carries
``no-run`` (```` ```python no-run ````) are syntax-checked only — for
snippets that need unavailable context (files, long-running workloads).

This is the docs half of the CI pipeline: together with the
``gen_api_docs.py`` freshness check it guarantees the prose can never
drift from the code it demonstrates. Exit status 0 iff every block of
every file ran (or compiled) cleanly.
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import List, Tuple

FENCE = re.compile(r"^```(\S*)[ \t]*(.*)$")


def extract_blocks(text: str) -> List[Tuple[int, str, str]]:
    """``(start_line, info_string, source)`` for every fenced code block."""
    blocks: List[Tuple[int, str, str]] = []
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        match = FENCE.match(lines[index])
        if match and match.group(1):
            language = match.group(1)
            info = match.group(2).strip()
            start = index + 1
            body: List[str] = []
            index += 1
            while index < len(lines) and not lines[index].startswith("```"):
                body.append(lines[index])
                index += 1
            blocks.append((start, f"{language} {info}".strip(), "\n".join(body)))
        index += 1
    return blocks


def check_file(path: pathlib.Path) -> List[str]:
    """Run the file's python blocks; returns error descriptions."""
    errors: List[str] = []
    namespace: dict = {"__name__": f"docs_check_{path.stem}"}
    executed = compiled = 0
    for start, info, source in extract_blocks(path.read_text(encoding="utf-8")):
        parts = info.split()
        if not parts or parts[0] != "python":
            continue
        run = "no-run" not in parts[1:]
        label = f"{path}:{start}"
        try:
            code = compile(source, label, "exec")
        except SyntaxError as exc:
            errors.append(f"{label}: syntax error: {exc}")
            continue
        compiled += 1
        if not run:
            continue
        try:
            exec(code, namespace)
        except Exception as exc:  # report and keep checking other blocks
            errors.append(f"{label}: {type(exc).__name__}: {exc}")
            continue
        executed += 1
    print(f"{path}: {executed} block(s) executed, {compiled - executed} compile-only")
    return errors


def main(argv: List[str]) -> int:
    root = pathlib.Path(__file__).resolve().parent.parent
    if argv:
        paths = [pathlib.Path(arg) for arg in argv]
    else:
        paths = [root / "README.md", *sorted((root / "docs").glob("*.md"))]
    all_errors: List[str] = []
    for path in paths:
        all_errors.extend(check_file(path))
    for error in all_errors:
        print(f"FAIL {error}", file=sys.stderr)
    if all_errors:
        print(f"{len(all_errors)} failing doc block(s)", file=sys.stderr)
        return 1
    print("all docs code blocks OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
